//! Out-of-core ingest: stream snapshot-cluster history through a
//! bounded-retention engine in budget-sized batches.
//!
//! The full-history pipeline keeps every tick's cluster arenas resident for
//! the whole run, which caps the workload size at whatever fits in RAM.
//! [`ingest_bounded`] instead
//!
//! 1. slices the incoming cluster sets into batches whose shared column
//!    arenas fit a fraction of the byte budget (see
//!    [`crate::env::mem_budget`]),
//! 2. runs the engine under [`RetentionPolicy::Bounded`](gpdt_core::RetentionPolicy) so ticks no future
//!    discovery step can touch are evicted between batches, and
//! 3. spills each batch's freshly finalized crowd records into a durable
//!    [`PatternStore`] *before* the eviction that would make their cluster
//!    references unresolvable, then drains them from the engine
//!    ([`GatheringEngine::drain_finalized`]) so the record history stops
//!    accumulating in RAM too.
//!
//! Discovery output is identical to a single-batch run: the engine's
//! resumed sweep is exact under any batch slicing, and the spilled records
//! plus the engine's final frontier together are exactly the single-batch
//! engine's closed crowds and gatherings.
//!
//! The *peak* of resident arena bytes still depends on the data, not only on
//! the budget: eviction cannot release ticks an open crowd still references,
//! so a crowd spanning the entire stream pins the entire stream.  Workloads
//! with finite crowd lifetimes (any realistic one) stay near the budget.
//!
//! [`ingest_resilient`] is the crash-safe variant: it slices against
//! *precomputed* batch boundaries ([`batch_boundaries`]) so every
//! incarnation of a run cuts the stream identically, fsyncs the store at
//! each boundary, and hands the caller a serializable [`ResilientCursor`]
//! (engine checkpoint + progress counters) after every batch.  A process
//! that dies mid-run restores the last cursor and continues; records the
//! previous incarnation already made durable are verified and skipped, so
//! the recovered store is byte-identical to an uninterrupted run.

use gpdt_clustering::{ClusterDatabase, SnapshotClusterSet};
use gpdt_core::GatheringEngine;
use gpdt_store::{PatternRecord, PatternStore, StoreError};

/// What one [`ingest_bounded`] run did, for logging and regression tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfCoreReport {
    /// The byte budget the batches were sized against.
    pub budget_bytes: usize,
    /// Number of ingest batches the stream was sliced into.
    pub batches: usize,
    /// Largest engine-resident cluster-arena footprint observed, measured
    /// right after each ingest (before the post-spill eviction).
    pub peak_arena_bytes: usize,
    /// Finalized crowd records spilled to the store.
    pub spilled_records: usize,
}

/// Streams `sets` into `engine` in batches sized to `budget_bytes`,
/// spilling finalized records into `store` as they close.
///
/// The engine should be configured with
/// [`RetentionPolicy::Bounded`](gpdt_core::RetentionPolicy::Bounded);
/// without it the driver still produces correct output but nothing is ever
/// evicted, so memory stays unbounded.  The engine's remaining frontier is
/// *not* archived — call [`PatternStore::archive_closed_frontier`] after the
/// stream ends if the store should become a complete archive.
///
/// # Errors
///
/// Propagates store errors; records appended before a failure stay
/// appended.
pub fn ingest_bounded<I>(
    engine: &mut GatheringEngine,
    sets: I,
    budget_bytes: usize,
    store: &mut PatternStore,
) -> Result<OutOfCoreReport, StoreError>
where
    I: IntoIterator<Item = SnapshotClusterSet>,
{
    let batch_budget = batch_budget(budget_bytes);
    let mut report = OutOfCoreReport {
        budget_bytes,
        batches: 0,
        peak_arena_bytes: 0,
        spilled_records: 0,
    };
    let mut batch: Vec<SnapshotClusterSet> = Vec::new();
    let mut batch_bytes = 0usize;
    for set in sets {
        // A batch always takes at least one set, so a single tick larger
        // than the budget degrades to tick-at-a-time ingest instead of
        // stalling.
        batch_bytes += set.arena_bytes();
        batch.push(set);
        if batch_bytes >= batch_budget {
            flush(engine, store, &mut batch, &mut report)?;
            batch_bytes = 0;
        }
    }
    flush(engine, store, &mut batch, &mut report)?;
    Ok(report)
}

/// A batch gets a quarter of the budget: the rest is headroom for the
/// retained window (the trailing `kc` ticks plus whatever the frontier
/// still references) that coexists with each incoming batch.
fn batch_budget(budget_bytes: usize) -> usize {
    (budget_bytes / 4).max(1)
}

/// Ingests one pending batch, spills what it finalized, then evicts.
fn flush(
    engine: &mut GatheringEngine,
    store: &mut PatternStore,
    batch: &mut Vec<SnapshotClusterSet>,
    report: &mut OutOfCoreReport,
) -> Result<(), StoreError> {
    if batch.is_empty() {
        return Ok(());
    }
    engine.ingest_clusters(ClusterDatabase::from_sets(std::mem::take(batch)));
    report.batches += 1;
    report.peak_arena_bytes = report
        .peak_arena_bytes
        .max(engine.cluster_database().arena_bytes());
    // Spill while the records' clusters are still resident: the engine's
    // deferred eviction has not run since these crowds closed.
    for record in engine.drain_finalized() {
        store.append_crowd_record(&record, engine.cluster_database())?;
        report.spilled_records += 1;
    }
    // The spilled records no longer pin history; reclaim eagerly instead of
    // waiting for the next ingest's deferred eviction.
    engine.evict_retired_clusters();
    Ok(())
}

/// End-exclusive batch boundaries for [`ingest_resilient`], computed from
/// the whole stream up front.
///
/// The slicing rule is the same as [`ingest_bounded`]'s, but because the
/// boundaries are a pure function of `(sets, budget_bytes)`, every
/// incarnation of a resilient run — including one resumed after a crash —
/// cuts the stream at exactly the same ticks, which is what makes engine
/// checkpoints taken at boundaries interchangeable across incarnations.
pub fn batch_boundaries(sets: &[SnapshotClusterSet], budget_bytes: usize) -> Vec<usize> {
    let batch_budget = batch_budget(budget_bytes);
    let mut bounds = Vec::new();
    let mut batch_bytes = 0usize;
    for (i, set) in sets.iter().enumerate() {
        batch_bytes += set.arena_bytes();
        if batch_bytes >= batch_budget {
            bounds.push(i + 1);
            batch_bytes = 0;
        }
    }
    if bounds.last() != Some(&sets.len()) && !sets.is_empty() {
        bounds.push(sets.len());
    }
    bounds
}

/// Resume point produced after every completed batch of
/// [`ingest_resilient`].
///
/// Serialize it with [`ResilientCursor::to_vec`], persist it atomically
/// (e.g. [`gpdt_store::write_file_atomic`]), and on restart decode it with
/// [`ResilientCursor::from_slice`], restore the engine from
/// [`ResilientCursor::engine`], and call [`ingest_resilient`] again with
/// `next_batch`/`produced`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResilientCursor {
    /// Index (into [`batch_boundaries`]) of the next batch to ingest.
    pub next_batch: u64,
    /// Engine-finalized records accounted for so far (verified or
    /// appended).  The store may be *ahead* of this after a crash — the
    /// resumed run re-verifies the overlap — but never behind it, because
    /// the store is fsynced before the cursor is handed out.
    pub produced: u64,
    /// Engine checkpoint bytes ([`gpdt_store::checkpoint_to_vec`]).
    pub engine: Vec<u8>,
}

impl ResilientCursor {
    /// Serializes the cursor: two little-endian `u64` counters followed by
    /// the engine checkpoint (which carries its own magic and checksum).
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.engine.len());
        out.extend_from_slice(&self.next_batch.to_le_bytes());
        out.extend_from_slice(&self.produced.to_le_bytes());
        out.extend_from_slice(&self.engine);
        out
    }

    /// Decodes a cursor written by [`ResilientCursor::to_vec`]; `None` if
    /// the buffer is too short to hold the counters.
    #[must_use]
    pub fn from_slice(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 16 {
            return None;
        }
        let next_batch = u64::from_le_bytes(bytes[..8].try_into().ok()?);
        let produced = u64::from_le_bytes(bytes[8..16].try_into().ok()?);
        Some(Self {
            next_batch,
            produced,
            engine: bytes[16..].to_vec(),
        })
    }
}

/// Crash-safe variant of [`ingest_bounded`]: resumable from a
/// [`ResilientCursor`], with the store fsynced at every batch boundary.
///
/// For a fresh run pass `start_batch = 0`, `produced = 0`; to resume, pass
/// the last persisted cursor's counters and an engine restored from its
/// checkpoint bytes.  While `produced` lags `store.len()` the re-finalized
/// records are compared against the stored ones and skipped instead of
/// re-appended, so a store that outlived the checkpoint (appends after the
/// cursor was written) is never double-appended.
///
/// `after_batch` runs once per completed batch with the fresh cursor; its
/// error aborts the run (the store keeps everything already synced).
///
/// # Errors
///
/// Propagates store errors and `after_batch` errors.  Returns
/// [`StoreError::InvalidRecord`] if a re-finalized record differs from the
/// stored record it should match — the store belongs to a different run
/// and resuming into it would corrupt the archive.
pub fn ingest_resilient<F>(
    engine: &mut GatheringEngine,
    sets: &[SnapshotClusterSet],
    budget_bytes: usize,
    store: &mut PatternStore,
    start_batch: usize,
    produced: usize,
    mut after_batch: F,
) -> Result<OutOfCoreReport, StoreError>
where
    F: FnMut(&ResilientCursor) -> Result<(), StoreError>,
{
    let bounds = batch_boundaries(sets, budget_bytes);
    let mut produced = produced;
    let mut report = OutOfCoreReport {
        budget_bytes,
        batches: 0,
        peak_arena_bytes: 0,
        spilled_records: 0,
    };
    for (b, &end) in bounds.iter().enumerate().skip(start_batch) {
        let begin = if b == 0 { 0 } else { bounds[b - 1] };
        engine.ingest_clusters(ClusterDatabase::from_sets(sets[begin..end].to_vec()));
        report.batches += 1;
        report.peak_arena_bytes = report
            .peak_arena_bytes
            .max(engine.cluster_database().arena_bytes());
        for record in engine.drain_finalized() {
            if produced < store.len() {
                // A previous incarnation already made this record durable:
                // verify instead of duplicating it.
                let got = PatternRecord::from_crowd_record(&record, engine.cluster_database());
                if got != store.records()[produced] {
                    return Err(StoreError::InvalidRecord(
                        "resumed ingest diverges from the stored records",
                    ));
                }
            } else {
                store.append_crowd_record(&record, engine.cluster_database())?;
                report.spilled_records += 1;
            }
            produced += 1;
        }
        engine.evict_retired_clusters();
        // The cursor promises `store.len() >= produced`; make the appends
        // durable before handing it out.
        store.sync()?;
        let cursor = ResilientCursor {
            next_batch: (b + 1) as u64,
            produced: produced as u64,
            engine: gpdt_store::checkpoint_to_vec(engine),
        };
        after_batch(&cursor)?;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpdt_core::{
        ClusteringParams, CrowdParams, GatheringConfig, GatheringParams, RetentionPolicy,
    };
    use gpdt_trajectory::{ObjectId, Trajectory, TrajectoryDatabase};

    fn config() -> GatheringConfig {
        GatheringConfig::builder()
            .clustering(ClusteringParams::new(60.0, 3))
            .crowd(CrowdParams::new(3, 4, 100.0))
            .gathering(GatheringParams::new(3, 3))
            .build()
            .unwrap()
    }

    /// Objects that repeatedly gather for six ticks and scatter for three:
    /// crowds have finite lifetimes, so bounded retention actually evicts.
    fn gather_scatter_cdb(objects: u32, duration: u32) -> ClusterDatabase {
        let db = TrajectoryDatabase::from_trajectories((0..objects).map(|i| {
            Trajectory::from_points(
                ObjectId::new(i),
                (0..duration)
                    .map(|t| {
                        let x = if t % 9 < 6 {
                            f64::from(i) * 10.0 + f64::from(t / 9) * 700.0
                        } else {
                            f64::from(i) * 50_000.0 + f64::from(t)
                        };
                        (t, (x, 0.0))
                    })
                    .collect::<Vec<_>>(),
            )
        }));
        ClusterDatabase::build(&db, &config().clustering)
    }

    #[test]
    fn bounded_ingest_matches_single_batch_output() {
        let cdb = gather_scatter_cdb(5, 45);

        let mut reference = GatheringEngine::new(config());
        reference.ingest_clusters(cdb.clone());
        let want_crowds = reference.closed_crowds();
        let want_gatherings = reference.gatherings();
        assert!(!want_crowds.is_empty(), "scenario must produce crowds");

        let dir = crate::env::scratch_dir("ooc-match");
        let mut store = PatternStore::open(&dir).unwrap();
        let mut engine = GatheringEngine::new(config()).with_retention(RetentionPolicy::Bounded);
        let report = ingest_bounded(&mut engine, cdb.into_sets(), 4 << 10, &mut store).unwrap();
        store.archive_closed_frontier(&engine).unwrap();

        assert!(report.batches > 1, "a 4 KiB budget must force batching");
        assert!(report.spilled_records > 0, "mid-stream crowds must spill");
        assert_eq!(store.len(), want_crowds.len());
        let mut got: Vec<_> = store.records().iter().map(|r| r.crowd.clone()).collect();
        got.sort_by(gpdt_core::canonical_crowd_order);
        assert_eq!(got, want_crowds);
        let stored_gatherings: usize = store.records().iter().map(|r| r.gatherings.len()).sum();
        assert_eq!(stored_gatherings, want_gatherings.len());
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn peak_arena_stays_under_budget() {
        let cdb = gather_scatter_cdb(6, 90);
        let full_bytes = cdb.arena_bytes();
        let budget = full_bytes / 4;

        let dir = crate::env::scratch_dir("ooc-budget");
        let mut store = PatternStore::open(&dir).unwrap();
        let mut engine = GatheringEngine::new(config()).with_retention(RetentionPolicy::Bounded);
        let report = ingest_bounded(&mut engine, cdb.into_sets(), budget, &mut store).unwrap();

        assert!(
            report.peak_arena_bytes <= budget,
            "peak {} exceeds budget {} (full history: {})",
            report.peak_arena_bytes,
            budget,
            full_bytes
        );
        assert!(report.peak_arena_bytes < full_bytes);
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoints_survive_drained_engines() {
        // A drained, evicted engine is still valid checkpoint input (the
        // restore cross-checks tolerate missing pre-eviction history).
        use gpdt_store::EngineCheckpoint;
        let cdb = gather_scatter_cdb(5, 45);
        let dir = crate::env::scratch_dir("ooc-ckpt");
        let mut store = PatternStore::open(&dir).unwrap();
        let mut engine = GatheringEngine::new(config()).with_retention(RetentionPolicy::Bounded);
        ingest_bounded(&mut engine, cdb.into_sets(), 4 << 10, &mut store).unwrap();
        let bytes = gpdt_store::checkpoint_to_vec(&engine);
        let back = gpdt_store::restore_from_slice(&bytes).unwrap();
        assert_eq!(back.frontier(), engine.frontier());
        assert_eq!(
            bytes,
            {
                let mut again = Vec::new();
                back.checkpoint(&mut again).unwrap();
                again
            },
            "restore → checkpoint must be a fixed point"
        );
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resilient_boundaries_cover_the_stream() {
        let cdb = gather_scatter_cdb(5, 45);
        let sets = cdb.into_sets();
        let bounds = batch_boundaries(&sets, 4 << 10);
        assert!(bounds.len() > 1, "a 4 KiB budget must force batching");
        assert_eq!(*bounds.last().unwrap(), sets.len());
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        assert!(batch_boundaries(&[], 4 << 10).is_empty());
    }

    #[test]
    fn resilient_ingest_resumes_byte_identically() {
        let cdb = gather_scatter_cdb(5, 45);
        let sets = cdb.into_sets();
        let budget = 4 << 10;

        // Reference: an uninterrupted resilient run.
        let ref_dir = crate::env::scratch_dir("ooc-res-ref");
        let mut ref_store = PatternStore::open(&ref_dir).unwrap();
        let mut ref_engine =
            GatheringEngine::new(config()).with_retention(RetentionPolicy::Bounded);
        let report = ingest_resilient(&mut ref_engine, &sets, budget, &mut ref_store, 0, 0, |_| {
            Ok(())
        })
        .unwrap();
        assert!(report.batches > 2, "scenario must span several batches");
        assert!(report.spilled_records > 0);

        // Interrupted run: abort after the second batch boundary, keeping
        // the cursor the incarnation would have persisted.
        let dir = crate::env::scratch_dir("ooc-res-resume");
        let mut cursors: Vec<ResilientCursor> = Vec::new();
        {
            let mut store = PatternStore::open(&dir).unwrap();
            let mut engine =
                GatheringEngine::new(config()).with_retention(RetentionPolicy::Bounded);
            let err = ingest_resilient(&mut engine, &sets, budget, &mut store, 0, 0, |c| {
                cursors.push(c.clone());
                if cursors.len() == 2 {
                    Err(StoreError::InvalidRecord("simulated crash"))
                } else {
                    Ok(())
                }
            })
            .unwrap_err();
            assert!(matches!(err, StoreError::InvalidRecord("simulated crash")));
        }
        let cursor = cursors.last().unwrap();
        assert_eq!(
            ResilientCursor::from_slice(&cursor.to_vec()).as_ref(),
            Some(cursor),
            "cursor must round-trip through its byte encoding"
        );

        // Resume in a fresh "process": reopen the store, restore the engine.
        let mut store = PatternStore::open(&dir).unwrap();
        let mut engine = gpdt_store::restore_from_slice(&cursor.engine)
            .unwrap()
            .with_retention(RetentionPolicy::Bounded);
        ingest_resilient(
            &mut engine,
            &sets,
            budget,
            &mut store,
            cursor.next_batch as usize,
            cursor.produced as usize,
            |_| Ok(()),
        )
        .unwrap();

        assert_eq!(store.records(), ref_store.records());
        assert_eq!(engine.frontier(), ref_engine.frontier());
        drop(store);
        drop(ref_store);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&ref_dir);
    }

    #[test]
    fn resilient_ingest_rejects_foreign_stores() {
        let cdb = gather_scatter_cdb(5, 45);
        let sets = cdb.into_sets();
        let shifted = gather_scatter_cdb(4, 45);

        // Fill the store from a *different* scenario, then resume over it
        // as if its records belonged to ours: the overlap check must trip.
        let dir = crate::env::scratch_dir("ooc-res-foreign");
        let mut store = PatternStore::open(&dir).unwrap();
        let mut other = GatheringEngine::new(config()).with_retention(RetentionPolicy::Bounded);
        ingest_resilient(
            &mut other,
            &shifted.into_sets(),
            4 << 10,
            &mut store,
            0,
            0,
            |_| Ok(()),
        )
        .unwrap();
        assert!(!store.is_empty());

        let mut engine = GatheringEngine::new(config()).with_retention(RetentionPolicy::Bounded);
        let err = ingest_resilient(&mut engine, &sets, 4 << 10, &mut store, 0, 0, |_| Ok(()))
            .unwrap_err();
        assert!(matches!(err, StoreError::InvalidRecord(_)), "{err}");
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
