//! Benchmarks of closed-gathering detection (brute force vs TAD vs TAD*) —
//! the Criterion companion of Figure 7.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpdt_bench::synth::{synthetic_crowd, SyntheticCrowdSpec};
use gpdt_core::{detect_closed_gatherings, GatheringParams, TadVariant};

fn bench_gathering_detection(c: &mut Criterion) {
    let params = GatheringParams::new(10, 12);
    let mut group = c.benchmark_group("gathering_detection");
    for &length in &[25usize, 45] {
        let (cdb, crowd) = synthetic_crowd(&SyntheticCrowdSpec::jam_like(3, length));
        for variant in TadVariant::ALL {
            group.bench_with_input(
                BenchmarkId::new(variant.label(), length),
                &variant,
                |b, &variant| {
                    b.iter(|| detect_closed_gatherings(&crowd, &cdb, &params, 15, variant))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_gathering_detection);
criterion_main!(benches);
