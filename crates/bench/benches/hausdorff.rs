//! Micro-benchmarks of the Hausdorff distance kernels and their rectangle
//! lower bounds (the refinement/pruning primitives of the range search).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpdt_geo::{hausdorff_distance, hausdorff_within, Mbr, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn cluster(rng: &mut StdRng, cx: f64, cy: f64, n: usize, spread: f64) -> Vec<Point> {
    (0..n)
        .map(|_| {
            Point::new(
                cx + rng.gen_range(-spread..spread),
                cy + rng.gen_range(-spread..spread),
            )
        })
        .collect()
}

fn bench_hausdorff(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("hausdorff");
    for &n in &[16usize, 64, 256] {
        let a = cluster(&mut rng, 0.0, 0.0, n, 150.0);
        let b = cluster(&mut rng, 120.0, 40.0, n, 150.0);
        group.bench_with_input(BenchmarkId::new("exact", n), &n, |bench, _| {
            bench.iter(|| hausdorff_distance(&a, &b))
        });
        group.bench_with_input(BenchmarkId::new("within_delta", n), &n, |bench, _| {
            bench.iter(|| hausdorff_within(&a, &b, 300.0))
        });
        let ma = Mbr::from_points(&a).unwrap();
        let mb = Mbr::from_points(&b).unwrap();
        group.bench_with_input(BenchmarkId::new("dmin_bound", n), &n, |bench, _| {
            bench.iter(|| ma.min_distance(&mb))
        });
        group.bench_with_input(BenchmarkId::new("dside_bound", n), &n, |bench, _| {
            bench.iter(|| ma.side_distance(&mb))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hausdorff);
criterion_main!(benches);
