//! Benchmarks of closed-crowd discovery (Algorithm 1) under the four
//! range-search strategies — the Criterion companion of Figure 6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpdt_bench::scenarios::clustered_scenario;
use gpdt_core::{CrowdDiscovery, CrowdParams, RangeSearchStrategy};

fn bench_crowd_discovery(c: &mut Criterion) {
    let cs = clustered_scenario(11, 400, 90);
    let params = CrowdParams::new(15, 20, 300.0);
    let mut group = c.benchmark_group("crowd_discovery");
    group.sample_size(10);
    for strategy in RangeSearchStrategy::ALL {
        group.bench_with_input(
            BenchmarkId::new("strategy", strategy.label()),
            &strategy,
            |b, &strategy| {
                let discovery = CrowdDiscovery::new(params, strategy);
                b.iter(|| discovery.run(&cs.clusters))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_crowd_discovery);
criterion_main!(benches);
