//! Micro-benchmarks of the snapshot-clustering phase: grid-accelerated DBSCAN
//! versus the brute-force oracle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpdt_clustering::dbscan::{dbscan, dbscan_bruteforce};
use gpdt_clustering::ClusteringParams;
use gpdt_geo::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn scene(n: usize) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(7);
    // Half the points in ten dense blobs, half uniform background.
    let mut points = Vec::with_capacity(n);
    for i in 0..n {
        if i % 2 == 0 {
            let blob = (i / 2) % 10;
            let cx = (blob % 5) as f64 * 2_000.0;
            let cy = (blob / 5) as f64 * 2_000.0;
            points.push(Point::new(
                cx + rng.gen_range(-120.0..120.0),
                cy + rng.gen_range(-120.0..120.0),
            ));
        } else {
            points.push(Point::new(
                rng.gen_range(0.0..10_000.0),
                rng.gen_range(0.0..10_000.0),
            ));
        }
    }
    points
}

fn bench_dbscan(c: &mut Criterion) {
    let params = ClusteringParams::new(200.0, 5);
    let mut group = c.benchmark_group("dbscan");
    for &n in &[200usize, 800, 2_000] {
        let points = scene(n);
        group.bench_with_input(BenchmarkId::new("grid", n), &n, |b, _| {
            b.iter(|| dbscan(&points, &params))
        });
        if n <= 800 {
            group.bench_with_input(BenchmarkId::new("bruteforce", n), &n, |b, _| {
                b.iter(|| dbscan_bruteforce(&points, &params))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_dbscan);
criterion_main!(benches);
