//! Benchmarks of the incremental algorithms: crowd extension vs full
//! re-computation, and gathering update vs re-detection — the Criterion
//! companion of Figure 8.

use criterion::{criterion_group, criterion_main, Criterion};
use gpdt_bench::scenarios::clustered_scenario;
use gpdt_bench::synth::{synthetic_crowd, SyntheticCrowdSpec};
use gpdt_clustering::ClusterDatabase;
use gpdt_core::incremental::{update_gatherings, IncrementalDiscovery};
use gpdt_core::{
    detect_closed_gatherings, CrowdDiscovery, CrowdParams, GatheringParams, RangeSearchStrategy,
    TadVariant,
};
use gpdt_trajectory::TimeInterval;

fn bench_crowd_extension(c: &mut Criterion) {
    let crowd_params = CrowdParams::new(15, 20, 300.0);
    let gathering_params = GatheringParams::new(10, 15);
    let total = clustered_scenario(3, 400, 120);
    let first = ClusterDatabase::build_interval(
        &total.scenario.database,
        &total.clustering,
        TimeInterval::new(0, 89),
    );
    let batch = ClusterDatabase::build_interval(
        &total.scenario.database,
        &total.clustering,
        TimeInterval::new(90, 119),
    );

    let mut group = c.benchmark_group("incremental_crowds");
    group.sample_size(10);
    group.bench_function("recompute_all", |b| {
        b.iter(|| {
            let discovery = CrowdDiscovery::new(crowd_params, RangeSearchStrategy::Grid);
            discovery.run(&total.clusters)
        })
    });
    group.bench_function("extend_frontier", |b| {
        b.iter(|| {
            let mut inc = IncrementalDiscovery::new(
                crowd_params,
                gathering_params,
                RangeSearchStrategy::Grid,
                TadVariant::TadStar,
            );
            inc.ingest(first.clone());
            inc.ingest(batch.clone())
        })
    });
    group.finish();
}

fn bench_gathering_update(c: &mut Criterion) {
    let params = GatheringParams::new(10, 12);
    let kc = 15;
    let (cdb, crowd) = synthetic_crowd(&SyntheticCrowdSpec::jam_like(5, 60));
    let old_len = 48; // r = 0.8
    let old_crowd = crowd.sub_crowd(0, old_len);
    let old_gatherings =
        detect_closed_gatherings(&old_crowd, &cdb, &params, kc, TadVariant::TadStar);

    let mut group = c.benchmark_group("incremental_gatherings");
    group.bench_function("recompute", |b| {
        b.iter(|| detect_closed_gatherings(&crowd, &cdb, &params, kc, TadVariant::TadStar))
    });
    group.bench_function("update", |b| {
        b.iter(|| {
            update_gatherings(
                &crowd,
                &cdb,
                old_len,
                &old_gatherings,
                &params,
                kc,
                TadVariant::TadStar,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_crowd_extension, bench_gathering_update);
criterion_main!(benches);
