//! Telemetry must never change results: the fig5 mining path — clustering,
//! the streaming engine, the out-of-core driver, the pattern store, and the
//! fault-injection VFS underneath — produces identical output with the
//! observability stack on and off.  This is the in-process version of the
//! CI step that byte-compares `BENCH_fig5.json` across `GPDT_OBS` modes.
//!
//! One `#[test]`: the gate is process-wide state.

use gpdt_bench::fault_sweep::mine_under_faults;
use gpdt_bench::out_of_core::ingest_bounded;
use gpdt_bench::scenarios::clustered_day;
use gpdt_clustering::SnapshotClusterSet;
use gpdt_core::{CrowdParams, GatheringConfig, GatheringEngine, GatheringParams, RetentionPolicy};
use gpdt_store::PatternStore;
use gpdt_workload::Weather;

fn config(clustering: gpdt_clustering::ClusteringParams) -> GatheringConfig {
    GatheringConfig {
        clustering,
        crowd: CrowdParams::new(5, 6, 300.0),
        gathering: GatheringParams::new(3, 4),
    }
}

/// The fig5 healthy path at toy scale, summarised as a `Debug` string (a
/// byte-compare proxy covering records, crowds and gatherings).
fn mine(tag: &str, sets: Vec<SnapshotClusterSet>, config: &GatheringConfig) -> String {
    let mut engine = GatheringEngine::new(*config).with_retention(RetentionPolicy::Bounded);
    let dir = gpdt_bench::env::scratch_dir(tag);
    let mut store = PatternStore::open(&dir).expect("open scratch store");
    // A tiny budget forces many batches through the spill path.
    ingest_bounded(&mut engine, sets, 1 << 20, &mut store).expect("spill records");
    store
        .archive_closed_frontier(&engine)
        .expect("archive frontier");
    let summary = format!(
        "{:?}|{:?}|{:?}",
        store.records(),
        engine.closed_crowds(),
        engine.gatherings()
    );
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    summary
}

#[test]
fn mining_output_is_identical_with_observability_on_and_off() {
    // Big enough that mining crosses the fault plan's 50-op kill point
    // (every record append, segment rotation and cursor write counts).
    let day = clustered_day(2013, Weather::Snowy, 140, 240);
    let config = config(day.clustering);
    let sets = day.clusters.into_sets();

    gpdt_obs::set_enabled(true);
    let healthy_on = mine("obs-eq-on", sets.clone(), &config);
    let (faulty_on, incarnations_on, restarts_on) =
        mine_under_faults(0xF00D, &config, &sets, 1 << 20);

    gpdt_obs::set_enabled(false);
    let healthy_off = mine("obs-eq-off", sets.clone(), &config);
    let (faulty_off, incarnations_off, restarts_off) =
        mine_under_faults(0xF00D, &config, &sets, 1 << 20);
    gpdt_obs::set_enabled(true);

    assert!(
        healthy_on.contains("Gathering") || !healthy_on.is_empty(),
        "the workload must produce something to compare"
    );
    assert_eq!(healthy_on, healthy_off, "telemetry changed mining output");

    // The fault schedule is seeded rng state; instrumentation consuming a
    // single draw would shift every kill point.  Identical incarnation and
    // restart counts prove the schedule — not just the end state — matched.
    assert_eq!(faulty_on, faulty_off, "telemetry changed fault recovery");
    assert_eq!(incarnations_on, incarnations_off);
    assert_eq!(restarts_on, restarts_off);
    assert!(
        incarnations_on > 1,
        "the fault plan must actually have killed the backend"
    );
}
