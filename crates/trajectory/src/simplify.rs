//! Douglas–Peucker polyline simplification.
//!
//! The snapshot-clustering phase of the paper can be accelerated by first
//! simplifying every trajectory with the Douglas–Peucker algorithm and
//! clustering the resulting line segments (the CuTS approach of Jeung et
//! al.).  This module provides the simplification step; the segment
//! clustering lives in `gpdt-clustering`.

use gpdt_geo::Point;

use crate::trajectory::{Sample, Trajectory};

/// Simplifies a polyline with the Douglas–Peucker algorithm.
///
/// Returns the indices (into `points`, in increasing order) of the retained
/// vertices.  The first and last points are always retained.  `tolerance` is
/// the maximum allowed perpendicular deviation of dropped points from the
/// simplified polyline.
///
/// An empty input yields an empty output; a single point yields `[0]`.
pub fn douglas_peucker(points: &[Point], tolerance: f64) -> Vec<usize> {
    assert!(
        tolerance >= 0.0 && tolerance.is_finite(),
        "tolerance must be non-negative and finite"
    );
    match points.len() {
        0 => return Vec::new(),
        1 => return vec![0],
        2 => return vec![0, 1],
        _ => {}
    }
    let mut keep = vec![false; points.len()];
    keep[0] = true;
    keep[points.len() - 1] = true;
    // Explicit stack instead of recursion: trajectories can be long and the
    // recursion depth is data-dependent.
    let mut stack = vec![(0usize, points.len() - 1)];
    while let Some((start, end)) = stack.pop() {
        if end <= start + 1 {
            continue;
        }
        let (mut max_dist, mut max_idx) = (0.0f64, start);
        for (idx, p) in points.iter().enumerate().take(end).skip(start + 1) {
            let d = p.distance_to_segment(&points[start], &points[end]);
            if d > max_dist {
                max_dist = d;
                max_idx = idx;
            }
        }
        if max_dist > tolerance {
            keep[max_idx] = true;
            stack.push((start, max_idx));
            stack.push((max_idx, end));
        }
    }
    keep.iter()
        .enumerate()
        .filter_map(|(i, &k)| k.then_some(i))
        .collect()
}

/// Simplifies a trajectory, keeping only the samples selected by
/// Douglas–Peucker on its spatial polyline.
///
/// The temporal information of retained samples is preserved, so the
/// simplified trajectory still interpolates positions over the same
/// lifespan (with bounded spatial error).
pub fn simplify_trajectory(trajectory: &Trajectory, tolerance: f64) -> Trajectory {
    let points: Vec<Point> = trajectory.samples().iter().map(|s| s.position).collect();
    let kept = douglas_peucker(&points, tolerance);
    let samples: Vec<Sample> = kept.iter().map(|&i| trajectory.samples()[i]).collect();
    Trajectory::new(trajectory.id(), samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ObjectId;

    fn pts(coords: &[(f64, f64)]) -> Vec<Point> {
        coords.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn trivial_inputs() {
        assert_eq!(douglas_peucker(&[], 1.0), Vec::<usize>::new());
        assert_eq!(douglas_peucker(&pts(&[(0.0, 0.0)]), 1.0), vec![0]);
        assert_eq!(
            douglas_peucker(&pts(&[(0.0, 0.0), (1.0, 1.0)]), 1.0),
            vec![0, 1]
        );
    }

    #[test]
    fn collinear_points_collapse_to_endpoints() {
        let p = pts(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]);
        assert_eq!(douglas_peucker(&p, 0.1), vec![0, 3]);
    }

    #[test]
    fn prominent_corner_is_kept() {
        let p = pts(&[(0.0, 0.0), (5.0, 10.0), (10.0, 0.0)]);
        assert_eq!(douglas_peucker(&p, 1.0), vec![0, 1, 2]);
    }

    #[test]
    fn small_wiggles_are_dropped() {
        let p = pts(&[
            (0.0, 0.0),
            (1.0, 0.05),
            (2.0, -0.05),
            (3.0, 0.02),
            (4.0, 0.0),
        ]);
        assert_eq!(douglas_peucker(&p, 0.5), vec![0, 4]);
    }

    #[test]
    fn spike_splits_recursion_and_keeps_deviating_neighbours() {
        // The spike at index 3 is kept.  Within the [0, 3] split, index 2
        // deviates most from the (0,0)-(3,5) chord and is kept; index 1 then
        // lies within the tolerance of the (0,0)-(2,-0.05) chord and is
        // dropped.
        let p = pts(&[
            (0.0, 0.0),
            (1.0, 0.05),
            (2.0, -0.05),
            (3.0, 5.0),
            (4.0, 0.0),
        ]);
        assert_eq!(douglas_peucker(&p, 0.5), vec![0, 2, 3, 4]);
    }

    #[test]
    fn zero_tolerance_keeps_all_non_collinear_points() {
        let p = pts(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.5), (3.0, 2.0)]);
        assert_eq!(douglas_peucker(&p, 0.0), vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_tolerance_rejected() {
        let _ = douglas_peucker(&pts(&[(0.0, 0.0), (1.0, 0.0)]), -1.0);
    }

    #[test]
    fn simplify_trajectory_preserves_endpoints_and_id() {
        let traj = Trajectory::from_points(
            ObjectId::new(9),
            vec![
                (0, (0.0, 0.0)),
                (1, (10.0, 0.1)),
                (2, (20.0, -0.1)),
                (3, (30.0, 0.0)),
            ],
        );
        let s = simplify_trajectory(&traj, 1.0);
        assert_eq!(s.id(), ObjectId::new(9));
        assert_eq!(s.len(), 2);
        assert_eq!(s.lifespan(), traj.lifespan());
    }

    #[test]
    fn simplified_error_is_bounded_by_tolerance() {
        let traj = Trajectory::from_points(
            ObjectId::new(1),
            (0..50u32)
                .map(|i| {
                    let x = i as f64 * 10.0;
                    let y = (i as f64 * 0.7).sin() * 3.0;
                    (i, (x, y))
                })
                .collect::<Vec<_>>(),
        );
        let tol = 1.5;
        let s = simplify_trajectory(&traj, tol);
        assert!(s.len() < traj.len());
        // Every original sample must be within `tol` of the simplified
        // polyline (checked against the nearest retained segment).
        let simplified: Vec<Point> = s.samples().iter().map(|p| p.position).collect();
        for orig in traj.samples() {
            let min_d = simplified
                .windows(2)
                .map(|w| orig.position.distance_to_segment(&w[0], &w[1]))
                .fold(f64::INFINITY, f64::min);
            assert!(min_d <= tol + 1e-9, "sample deviates by {min_d}");
        }
    }
}

#[cfg(test)]
// Deterministic seeded-random property checks (the container builds offline,
// so these use the vendored `rand` shim instead of `proptest`).
mod proptests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_polyline(rng: &mut StdRng) -> Vec<Point> {
        let n = rng.gen_range(2..60);
        (0..n)
            .map(|_| Point::new(rng.gen_range(-1e4..1e4), rng.gen_range(-1e4..1e4)))
            .collect()
    }

    /// Output indices are strictly increasing and include both endpoints.
    #[test]
    fn keeps_endpoints_and_order() {
        let mut rng = StdRng::seed_from_u64(0x91);
        for _ in 0..256 {
            let points = random_polyline(&mut rng);
            let tol = rng.gen_range(0.0..500.0);
            let kept = douglas_peucker(&points, tol);
            assert!(kept.len() >= 2);
            assert_eq!(kept[0], 0);
            assert_eq!(*kept.last().unwrap(), points.len() - 1);
            for w in kept.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    /// Every dropped point is within tolerance of the simplified polyline.
    #[test]
    fn error_bounded() {
        let mut rng = StdRng::seed_from_u64(0x92);
        for _ in 0..256 {
            let points = random_polyline(&mut rng);
            let tol = rng.gen_range(0.0..500.0);
            let kept = douglas_peucker(&points, tol);
            let simplified: Vec<Point> = kept.iter().map(|&i| points[i]).collect();
            for p in &points {
                let min_d = simplified
                    .windows(2)
                    .map(|w| p.distance_to_segment(&w[0], &w[1]))
                    .fold(f64::INFINITY, f64::min);
                let min_d = if simplified.len() == 1 {
                    p.distance(&simplified[0])
                } else {
                    min_d
                };
                assert!(min_d <= tol + 1e-6);
            }
        }
    }
}
