//! Trajectory data model.
//!
//! This crate implements the moving-object database model of §II of the
//! paper:
//!
//! * a [`Trajectory`] is a finite sequence of timestamped locations of one
//!   moving object,
//! * a [`TrajectoryDatabase`] holds the trajectories of all objects over a
//!   discretised time domain and can produce the *snapshot* of all object
//!   positions at a time point, creating **virtual points by linear
//!   interpolation** for objects whose samples are not synchronised with the
//!   time domain,
//! * [`simplify`] provides the Douglas–Peucker polyline simplification used
//!   by the CuTS-style pre-clustering of the snapshot-clustering phase,
//! * [`io`] provides a small line-oriented text format for persisting and
//!   reloading trajectory datasets (object id, timestamp, x, y per line).
//!
//! Timestamps are indices into the discretised time domain (`u32`); the
//! paper uses one-minute granularity but nothing in this crate depends on
//! the physical duration of a tick.

pub mod database;
pub mod io;
pub mod simplify;
pub mod trajectory;
pub mod types;

pub use database::{DatabaseBuilder, Snapshot, TrajectoryDatabase};
pub use simplify::douglas_peucker;
pub use trajectory::{Sample, Trajectory};
pub use types::{ObjectId, TimeInterval, Timestamp};
