//! A single moving object's trajectory.

use gpdt_geo::Point;

use crate::types::{ObjectId, TimeInterval, Timestamp};

/// One timestamped location sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// The tick at which the location was observed.
    pub time: Timestamp,
    /// The observed location.
    pub position: Point,
}

impl Sample {
    /// Creates a sample.
    pub const fn new(time: Timestamp, position: Point) -> Self {
        Sample { time, position }
    }
}

/// The trajectory of a single moving object.
///
/// A trajectory is a polyline given as a finite sequence of timestamped
/// locations over a closed time interval (§II of the paper).  Samples are
/// kept sorted by timestamp; different objects may have different lifespans
/// and sampling rates.  Locations at unsampled ticks inside the lifespan are
/// produced by linear interpolation ([`Trajectory::position_at`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    id: ObjectId,
    samples: Vec<Sample>,
}

impl Trajectory {
    /// Creates a trajectory from unordered samples.
    ///
    /// Samples are sorted by timestamp; duplicate timestamps keep the last
    /// occurrence (later observations overwrite earlier ones).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn new(id: ObjectId, mut samples: Vec<Sample>) -> Self {
        assert!(
            !samples.is_empty(),
            "a trajectory needs at least one sample"
        );
        samples.sort_by_key(|s| s.time);
        samples.dedup_by(|later, earlier| {
            if later.time == earlier.time {
                // keep the later observation's position
                earlier.position = later.position;
                true
            } else {
                false
            }
        });
        Trajectory { id, samples }
    }

    /// Convenience constructor from `(timestamp, (x, y))` pairs.
    pub fn from_points(
        id: ObjectId,
        points: impl IntoIterator<Item = (Timestamp, (f64, f64))>,
    ) -> Self {
        let samples = points
            .into_iter()
            .map(|(t, (x, y))| Sample::new(t, Point::new(x, y)))
            .collect();
        Trajectory::new(id, samples)
    }

    /// The object this trajectory belongs to.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Always `false`: trajectories have at least one sample.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The lifespan `o.τ` of the object: the closed interval from the first
    /// to the last sample.
    pub fn lifespan(&self) -> TimeInterval {
        TimeInterval::new(
            self.samples.first().expect("non-empty").time,
            self.samples.last().expect("non-empty").time,
        )
    }

    /// The location `o(t)` of the object at tick `t`.
    ///
    /// Returns the sampled position if `t` is a sample tick; otherwise, if
    /// `t` falls strictly inside the lifespan, the *virtual point* obtained
    /// by linear interpolation between the neighbouring samples; and `None`
    /// if `t` lies outside the lifespan (the object is not being tracked).
    pub fn position_at(&self, t: Timestamp) -> Option<Point> {
        let first = self.samples.first().expect("non-empty");
        let last = self.samples.last().expect("non-empty");
        if t < first.time || t > last.time {
            return None;
        }
        match self.samples.binary_search_by_key(&t, |s| s.time) {
            Ok(idx) => Some(self.samples[idx].position),
            Err(idx) => {
                // `idx` is the insertion point: samples[idx - 1].time < t < samples[idx].time
                let before = &self.samples[idx - 1];
                let after = &self.samples[idx];
                let span = (after.time - before.time) as f64;
                let frac = (t - before.time) as f64 / span;
                Some(before.position.lerp(&after.position, frac))
            }
        }
    }

    /// The exact sample at tick `t`, without interpolation.
    pub fn sample_at(&self, t: Timestamp) -> Option<&Sample> {
        self.samples
            .binary_search_by_key(&t, |s| s.time)
            .ok()
            .map(|idx| &self.samples[idx])
    }

    /// Appends a sample; it must be strictly later than the current last
    /// sample.
    ///
    /// Used by the incremental pipeline when new trajectory batches arrive.
    ///
    /// # Errors
    ///
    /// Returns an error if `sample.time` is not strictly greater than the
    /// last sample's timestamp.
    pub fn append(&mut self, sample: Sample) -> Result<(), AppendError> {
        let last = self.samples.last().expect("non-empty");
        if sample.time <= last.time {
            return Err(AppendError {
                last: last.time,
                attempted: sample.time,
            });
        }
        self.samples.push(sample);
        Ok(())
    }

    /// Total polyline length in metres (sum of inter-sample distances).
    pub fn path_length(&self) -> f64 {
        self.samples
            .windows(2)
            .map(|w| w[0].position.distance(&w[1].position))
            .sum()
    }

    /// The sub-trajectory restricted to `interval`, if any samples fall
    /// inside it.
    pub fn slice(&self, interval: TimeInterval) -> Option<Trajectory> {
        let samples: Vec<Sample> = self
            .samples
            .iter()
            .filter(|s| interval.contains(s.time))
            .copied()
            .collect();
        if samples.is_empty() {
            None
        } else {
            Some(Trajectory::new(self.id, samples))
        }
    }
}

/// Error returned by [`Trajectory::append`] when the new sample does not
/// advance time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendError {
    /// Timestamp of the current last sample.
    pub last: Timestamp,
    /// Timestamp of the rejected sample.
    pub attempted: Timestamp,
}

impl std::fmt::Display for AppendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "appended sample at t={} does not advance past last sample at t={}",
            self.attempted, self.last
        )
    }
}

impl std::error::Error for AppendError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj() -> Trajectory {
        Trajectory::from_points(
            ObjectId::new(1),
            vec![(0, (0.0, 0.0)), (10, (100.0, 0.0)), (20, (100.0, 100.0))],
        )
    }

    #[test]
    fn samples_are_sorted_on_construction() {
        let t = Trajectory::from_points(
            ObjectId::new(7),
            vec![(20, (2.0, 0.0)), (0, (0.0, 0.0)), (10, (1.0, 0.0))],
        );
        let times: Vec<Timestamp> = t.samples().iter().map(|s| s.time).collect();
        assert_eq!(times, vec![0, 10, 20]);
    }

    #[test]
    fn duplicate_timestamps_keep_last_observation() {
        let t = Trajectory::new(
            ObjectId::new(1),
            vec![
                Sample::new(5, Point::new(1.0, 1.0)),
                Sample::new(5, Point::new(2.0, 2.0)),
            ],
        );
        assert_eq!(t.len(), 1);
        assert_eq!(t.position_at(5), Some(Point::new(2.0, 2.0)));
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_trajectory_rejected() {
        let _ = Trajectory::new(ObjectId::new(0), vec![]);
    }

    #[test]
    fn lifespan_covers_first_to_last() {
        assert_eq!(traj().lifespan(), TimeInterval::new(0, 20));
    }

    #[test]
    fn position_at_sample_ticks() {
        let t = traj();
        assert_eq!(t.position_at(0), Some(Point::new(0.0, 0.0)));
        assert_eq!(t.position_at(10), Some(Point::new(100.0, 0.0)));
        assert_eq!(t.position_at(20), Some(Point::new(100.0, 100.0)));
    }

    #[test]
    fn position_at_interpolates_virtual_points() {
        let t = traj();
        assert_eq!(t.position_at(5), Some(Point::new(50.0, 0.0)));
        assert_eq!(t.position_at(15), Some(Point::new(100.0, 50.0)));
        assert_eq!(t.position_at(1), Some(Point::new(10.0, 0.0)));
    }

    #[test]
    fn position_outside_lifespan_is_none() {
        let t = traj();
        assert_eq!(t.position_at(21), None);
        let t2 = Trajectory::from_points(ObjectId::new(2), vec![(5, (0.0, 0.0)), (9, (4.0, 0.0))]);
        assert_eq!(t2.position_at(4), None);
        assert_eq!(t2.position_at(10), None);
    }

    #[test]
    fn sample_at_only_returns_exact_samples() {
        let t = traj();
        assert!(t.sample_at(10).is_some());
        assert!(t.sample_at(5).is_none());
    }

    #[test]
    fn append_advancing_sample() {
        let mut t = traj();
        assert!(t.append(Sample::new(25, Point::new(0.0, 0.0))).is_ok());
        assert_eq!(t.lifespan(), TimeInterval::new(0, 25));
    }

    #[test]
    fn append_non_advancing_sample_is_rejected() {
        let mut t = traj();
        let err = t.append(Sample::new(20, Point::new(0.0, 0.0))).unwrap_err();
        assert_eq!(err.last, 20);
        assert_eq!(err.attempted, 20);
        assert!(err.to_string().contains("does not advance"));
    }

    #[test]
    fn path_length_sums_segments() {
        assert_eq!(traj().path_length(), 200.0);
        let single = Trajectory::from_points(ObjectId::new(3), vec![(0, (1.0, 1.0))]);
        assert_eq!(single.path_length(), 0.0);
    }

    #[test]
    fn slice_restricts_to_interval() {
        let t = traj();
        let s = t.slice(TimeInterval::new(5, 20)).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.lifespan(), TimeInterval::new(10, 20));
        assert!(t.slice(TimeInterval::new(30, 40)).is_none());
    }

    #[test]
    fn single_sample_trajectory_interpolation() {
        let t = Trajectory::from_points(ObjectId::new(4), vec![(7, (3.0, 4.0))]);
        assert_eq!(t.position_at(7), Some(Point::new(3.0, 4.0)));
        assert_eq!(t.position_at(6), None);
        assert_eq!(t.position_at(8), None);
        assert_eq!(t.lifespan().len(), 1);
    }
}

#[cfg(test)]
// Deterministic seeded-random property checks (the container builds offline,
// so these use the vendored `rand` shim instead of `proptest`).
mod proptests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_samples(rng: &mut StdRng) -> Vec<(Timestamp, (f64, f64))> {
        let n = rng.gen_range(1..40);
        (0..n)
            .map(|_| {
                (
                    rng.gen_range(0u32..1000),
                    (rng.gen_range(-1e5..1e5), rng.gen_range(-1e5..1e5)),
                )
            })
            .collect()
    }

    /// Interpolated positions always lie inside the bounding box of the
    /// neighbouring samples (convexity of linear interpolation).
    #[test]
    fn interpolation_stays_in_sample_bbox() {
        let mut rng = StdRng::seed_from_u64(0x81);
        for _ in 0..256 {
            let samples = random_samples(&mut rng);
            let t = rng.gen_range(0u32..1000);
            let traj = Trajectory::from_points(ObjectId::new(0), samples);
            if let Some(p) = traj.position_at(t) {
                let min_x = traj
                    .samples()
                    .iter()
                    .map(|s| s.position.x)
                    .fold(f64::INFINITY, f64::min);
                let max_x = traj
                    .samples()
                    .iter()
                    .map(|s| s.position.x)
                    .fold(f64::NEG_INFINITY, f64::max);
                let min_y = traj
                    .samples()
                    .iter()
                    .map(|s| s.position.y)
                    .fold(f64::INFINITY, f64::min);
                let max_y = traj
                    .samples()
                    .iter()
                    .map(|s| s.position.y)
                    .fold(f64::NEG_INFINITY, f64::max);
                assert!(p.x >= min_x - 1e-6 && p.x <= max_x + 1e-6);
                assert!(p.y >= min_y - 1e-6 && p.y <= max_y + 1e-6);
            }
        }
    }

    /// `position_at` is defined exactly on the lifespan.
    #[test]
    fn position_defined_iff_in_lifespan() {
        let mut rng = StdRng::seed_from_u64(0x82);
        for _ in 0..256 {
            let samples = random_samples(&mut rng);
            let t = rng.gen_range(0u32..1100);
            let traj = Trajectory::from_points(ObjectId::new(0), samples);
            let lifespan = traj.lifespan();
            assert_eq!(traj.position_at(t).is_some(), lifespan.contains(t));
        }
    }

    /// Sample timestamps are strictly increasing after construction.
    #[test]
    fn samples_strictly_increasing() {
        let mut rng = StdRng::seed_from_u64(0x83);
        for _ in 0..256 {
            let samples = random_samples(&mut rng);
            let traj = Trajectory::from_points(ObjectId::new(0), samples);
            for w in traj.samples().windows(2) {
                assert!(w[0].time < w[1].time);
            }
        }
    }
}
