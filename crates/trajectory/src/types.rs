//! Fundamental identifier and time types.

use std::fmt;

/// Discretised time point: an index into the database's time domain `TDB`.
///
/// The paper discretises the time domain at one-minute granularity; a
/// `Timestamp` of `t` denotes the `t`-th tick of that domain.
pub type Timestamp = u32;

/// Identifier of a moving object (a taxi, pedestrian, animal, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// Creates an object identifier.
    pub const fn new(id: u32) -> Self {
        ObjectId(id)
    }

    /// The raw numeric identifier.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The identifier as a `usize`, convenient for indexing dense arrays.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for ObjectId {
    fn from(v: u32) -> Self {
        ObjectId(v)
    }
}

impl From<ObjectId> for u32 {
    fn from(v: ObjectId) -> Self {
        v.0
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// A closed interval of timestamps `[start, end]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeInterval {
    /// First timestamp of the interval (inclusive).
    pub start: Timestamp,
    /// Last timestamp of the interval (inclusive).
    pub end: Timestamp,
}

impl TimeInterval {
    /// Creates an interval.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        assert!(start <= end, "invalid interval [{start}, {end}]");
        TimeInterval { start, end }
    }

    /// Number of timestamps covered (the paper's lifetime `τ`).
    pub fn len(&self) -> u32 {
        self.end - self.start + 1
    }

    /// Always `false`: a `TimeInterval` covers at least one timestamp.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Returns `true` if `t` lies inside the interval.
    pub fn contains(&self, t: Timestamp) -> bool {
        self.start <= t && t <= self.end
    }

    /// Intersection of two intervals, if they overlap.
    pub fn intersect(&self, other: &TimeInterval) -> Option<TimeInterval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start <= end {
            Some(TimeInterval::new(start, end))
        } else {
            None
        }
    }

    /// Iterator over the covered timestamps.
    pub fn iter(&self) -> impl Iterator<Item = Timestamp> {
        self.start..=self.end
    }
}

impl fmt::Display for TimeInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_id_conversions() {
        let id = ObjectId::new(42);
        assert_eq!(id.raw(), 42);
        assert_eq!(id.index(), 42);
        assert_eq!(ObjectId::from(42u32), id);
        assert_eq!(u32::from(id), 42);
        assert_eq!(id.to_string(), "o42");
    }

    #[test]
    fn interval_length_and_contains() {
        let iv = TimeInterval::new(3, 7);
        assert_eq!(iv.len(), 5);
        assert!(!iv.is_empty());
        assert!(iv.contains(3));
        assert!(iv.contains(7));
        assert!(!iv.contains(2));
        assert!(!iv.contains(8));
        assert_eq!(iv.iter().collect::<Vec<_>>(), vec![3, 4, 5, 6, 7]);
    }

    #[test]
    fn single_point_interval() {
        let iv = TimeInterval::new(5, 5);
        assert_eq!(iv.len(), 1);
        assert!(iv.contains(5));
    }

    #[test]
    #[should_panic(expected = "invalid interval")]
    fn interval_rejects_reversed_bounds() {
        let _ = TimeInterval::new(7, 3);
    }

    #[test]
    fn interval_intersection() {
        let a = TimeInterval::new(0, 10);
        let b = TimeInterval::new(5, 15);
        assert_eq!(a.intersect(&b), Some(TimeInterval::new(5, 10)));
        assert_eq!(b.intersect(&a), Some(TimeInterval::new(5, 10)));
        let c = TimeInterval::new(11, 12);
        assert_eq!(a.intersect(&c), None);
        let d = TimeInterval::new(10, 20);
        assert_eq!(a.intersect(&d), Some(TimeInterval::new(10, 10)));
    }

    #[test]
    fn interval_display() {
        assert_eq!(TimeInterval::new(1, 9).to_string(), "[1, 9]");
    }
}
