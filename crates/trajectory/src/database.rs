//! The moving-object (trajectory) database `ODB`.

use std::collections::BTreeMap;

use gpdt_geo::Point;

use crate::trajectory::{Sample, Trajectory};
use crate::types::{ObjectId, TimeInterval, Timestamp};

/// The positions of all tracked objects at one time point.
///
/// This is the input of the snapshot-clustering phase: for every object whose
/// lifespan covers the tick, its (possibly interpolated) location.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The tick this snapshot describes.
    pub time: Timestamp,
    /// `(object, location)` pairs, sorted by object id.
    pub positions: Vec<(ObjectId, Point)>,
}

impl Snapshot {
    /// Number of objects present at this tick.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Returns `true` if no object is present at this tick.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Location of `id` at this tick, if the object is present.
    pub fn position_of(&self, id: ObjectId) -> Option<Point> {
        self.positions
            .binary_search_by_key(&id, |(oid, _)| *oid)
            .ok()
            .map(|idx| self.positions[idx].1)
    }
}

/// A database of moving-object trajectories over a discretised time domain.
///
/// This corresponds to `ODB` with time domain `TDB` in the paper.  The time
/// domain is the union of all trajectory lifespans, `[min_time, max_time]`.
#[derive(Debug, Clone, Default)]
pub struct TrajectoryDatabase {
    trajectories: BTreeMap<ObjectId, Trajectory>,
}

impl TrajectoryDatabase {
    /// Creates an empty database.
    pub fn new() -> Self {
        TrajectoryDatabase::default()
    }

    /// Creates a database from a collection of trajectories.
    ///
    /// If several trajectories share an object id their samples are merged.
    pub fn from_trajectories(trajectories: impl IntoIterator<Item = Trajectory>) -> Self {
        let mut db = TrajectoryDatabase::new();
        for t in trajectories {
            db.insert(t);
        }
        db
    }

    /// Inserts (or merges) a trajectory.
    pub fn insert(&mut self, trajectory: Trajectory) {
        match self.trajectories.get_mut(&trajectory.id()) {
            Some(existing) => {
                let mut samples: Vec<Sample> = existing.samples().to_vec();
                samples.extend_from_slice(trajectory.samples());
                *existing = Trajectory::new(existing.id(), samples);
            }
            None => {
                self.trajectories.insert(trajectory.id(), trajectory);
            }
        }
    }

    /// Number of tracked objects.
    pub fn len(&self) -> usize {
        self.trajectories.len()
    }

    /// Returns `true` if the database holds no trajectories.
    pub fn is_empty(&self) -> bool {
        self.trajectories.is_empty()
    }

    /// The trajectory of `id`, if tracked.
    pub fn get(&self, id: ObjectId) -> Option<&Trajectory> {
        self.trajectories.get(&id)
    }

    /// Iterator over all trajectories, ordered by object id.
    pub fn iter(&self) -> impl Iterator<Item = &Trajectory> {
        self.trajectories.values()
    }

    /// All object ids, ordered.
    pub fn object_ids(&self) -> Vec<ObjectId> {
        self.trajectories.keys().copied().collect()
    }

    /// The time domain `TDB`: the interval spanned by all lifespans, or
    /// `None` for an empty database.
    pub fn time_domain(&self) -> Option<TimeInterval> {
        let mut min = Timestamp::MAX;
        let mut max = Timestamp::MIN;
        for t in self.trajectories.values() {
            let l = t.lifespan();
            min = min.min(l.start);
            max = max.max(l.end);
        }
        if self.trajectories.is_empty() {
            None
        } else {
            Some(TimeInterval::new(min, max))
        }
    }

    /// The snapshot of all object locations at tick `t`.
    ///
    /// Objects whose lifespan does not cover `t` are absent; objects without
    /// an exact sample at `t` contribute a linearly interpolated virtual
    /// point, exactly as prescribed in §II of the paper.
    pub fn snapshot(&self, t: Timestamp) -> Snapshot {
        let positions = self
            .trajectories
            .values()
            .filter_map(|traj| traj.position_at(t).map(|p| (traj.id(), p)))
            .collect();
        Snapshot { time: t, positions }
    }

    /// Restricts the database to trajectories of the given objects.
    ///
    /// Used by the `|ODB|` scalability sweeps, which sample random subsets of
    /// the object population.
    pub fn filter_objects(&self, ids: &[ObjectId]) -> TrajectoryDatabase {
        let wanted: std::collections::BTreeSet<ObjectId> = ids.iter().copied().collect();
        TrajectoryDatabase {
            trajectories: self
                .trajectories
                .iter()
                .filter(|(id, _)| wanted.contains(id))
                .map(|(id, t)| (*id, t.clone()))
                .collect(),
        }
    }

    /// Appends a batch of new trajectory data (the incremental-update
    /// scenario of §III-C).
    ///
    /// Samples of existing objects are merged into their trajectories; new
    /// objects are added.
    pub fn append_batch(&mut self, batch: impl IntoIterator<Item = Trajectory>) {
        for t in batch {
            self.insert(t);
        }
    }

    /// Restricts the database to the given time interval, dropping objects
    /// with no samples inside it.
    pub fn slice_time(&self, interval: TimeInterval) -> TrajectoryDatabase {
        TrajectoryDatabase {
            trajectories: self
                .trajectories
                .iter()
                .filter_map(|(id, t)| t.slice(interval).map(|s| (*id, s)))
                .collect(),
        }
    }

    /// Total number of stored samples across all trajectories.
    pub fn total_samples(&self) -> usize {
        self.trajectories.values().map(|t| t.len()).sum()
    }
}

/// Incremental builder for a [`TrajectoryDatabase`].
///
/// Collects raw `(object, tick, position)` observations in any order and
/// assembles them into trajectories.
#[derive(Debug, Default)]
pub struct DatabaseBuilder {
    samples: BTreeMap<ObjectId, Vec<Sample>>,
}

impl DatabaseBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        DatabaseBuilder::default()
    }

    /// Records one observation.
    pub fn push(&mut self, id: ObjectId, time: Timestamp, position: Point) -> &mut Self {
        self.samples
            .entry(id)
            .or_default()
            .push(Sample::new(time, position));
        self
    }

    /// Number of observations recorded so far.
    pub fn sample_count(&self) -> usize {
        self.samples.values().map(Vec::len).sum()
    }

    /// Builds the database; objects with no observations are absent.
    pub fn build(self) -> TrajectoryDatabase {
        TrajectoryDatabase::from_trajectories(
            self.samples
                .into_iter()
                .map(|(id, samples)| Trajectory::new(id, samples)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> TrajectoryDatabase {
        TrajectoryDatabase::from_trajectories(vec![
            Trajectory::from_points(ObjectId::new(1), vec![(0, (0.0, 0.0)), (10, (10.0, 0.0))]),
            Trajectory::from_points(ObjectId::new(2), vec![(5, (0.0, 5.0)), (15, (0.0, 15.0))]),
            Trajectory::from_points(ObjectId::new(3), vec![(20, (1.0, 1.0))]),
        ])
    }

    #[test]
    fn time_domain_spans_all_lifespans() {
        assert_eq!(db().time_domain(), Some(TimeInterval::new(0, 20)));
        assert_eq!(TrajectoryDatabase::new().time_domain(), None);
    }

    #[test]
    fn snapshot_contains_only_live_objects() {
        let db = db();
        let s0 = db.snapshot(0);
        assert_eq!(s0.len(), 1);
        assert_eq!(s0.position_of(ObjectId::new(1)), Some(Point::new(0.0, 0.0)));

        let s7 = db.snapshot(7);
        assert_eq!(s7.len(), 2);
        // Object 1 interpolated at t=7 -> (7, 0); object 2 at t=7 -> (0, 7).
        assert_eq!(s7.position_of(ObjectId::new(1)), Some(Point::new(7.0, 0.0)));
        assert_eq!(s7.position_of(ObjectId::new(2)), Some(Point::new(0.0, 7.0)));
        assert_eq!(s7.position_of(ObjectId::new(3)), None);

        let s20 = db.snapshot(20);
        assert_eq!(s20.len(), 1);
        assert!(!s20.is_empty());
        assert_eq!(
            s20.position_of(ObjectId::new(3)),
            Some(Point::new(1.0, 1.0))
        );
    }

    #[test]
    fn snapshot_positions_sorted_by_object_id() {
        let s = db().snapshot(7);
        let ids: Vec<u32> = s.positions.iter().map(|(id, _)| id.raw()).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn insert_merges_same_object() {
        let mut db = TrajectoryDatabase::new();
        db.insert(Trajectory::from_points(
            ObjectId::new(1),
            vec![(0, (0.0, 0.0))],
        ));
        db.insert(Trajectory::from_points(
            ObjectId::new(1),
            vec![(5, (5.0, 0.0))],
        ));
        assert_eq!(db.len(), 1);
        assert_eq!(db.get(ObjectId::new(1)).unwrap().len(), 2);
        assert_eq!(db.total_samples(), 2);
    }

    #[test]
    fn filter_objects_keeps_only_requested() {
        let db = db();
        let filtered = db.filter_objects(&[ObjectId::new(1), ObjectId::new(3), ObjectId::new(9)]);
        assert_eq!(filtered.len(), 2);
        assert!(filtered.get(ObjectId::new(2)).is_none());
    }

    #[test]
    fn append_batch_extends_time_domain() {
        let mut db = db();
        db.append_batch(vec![Trajectory::from_points(
            ObjectId::new(2),
            vec![(25, (0.0, 25.0))],
        )]);
        assert_eq!(db.time_domain(), Some(TimeInterval::new(0, 25)));
        assert_eq!(db.get(ObjectId::new(2)).unwrap().len(), 3);
    }

    #[test]
    fn slice_time_drops_objects_outside_interval() {
        let db = db();
        let sliced = db.slice_time(TimeInterval::new(0, 10));
        assert_eq!(sliced.len(), 2);
        assert!(sliced.get(ObjectId::new(3)).is_none());
    }

    #[test]
    fn builder_assembles_per_object_trajectories() {
        let mut b = DatabaseBuilder::new();
        b.push(ObjectId::new(1), 2, Point::new(1.0, 1.0));
        b.push(ObjectId::new(2), 0, Point::new(0.0, 0.0));
        b.push(ObjectId::new(1), 0, Point::new(0.0, 0.0));
        assert_eq!(b.sample_count(), 3);
        let db = b.build();
        assert_eq!(db.len(), 2);
        assert_eq!(db.get(ObjectId::new(1)).unwrap().len(), 2);
        assert_eq!(
            db.get(ObjectId::new(1)).unwrap().lifespan(),
            TimeInterval::new(0, 2)
        );
    }

    #[test]
    fn empty_database_properties() {
        let db = TrajectoryDatabase::new();
        assert!(db.is_empty());
        assert_eq!(db.len(), 0);
        assert_eq!(db.total_samples(), 0);
        assert!(db.snapshot(0).is_empty());
        assert!(db.object_ids().is_empty());
    }
}
