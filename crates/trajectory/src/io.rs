//! Plain-text persistence for trajectory datasets.
//!
//! The format is a line-oriented CSV-like record stream, one observation per
//! line:
//!
//! ```text
//! # comment lines start with '#'
//! object_id,timestamp,x,y
//! 17,42,12345.6,-789.0
//! ```
//!
//! It is intentionally simple — enough to snapshot synthetic workloads to
//! disk so that a figure run can be repeated on the exact same data, without
//! pulling in heavier serialization dependencies.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use gpdt_geo::Point;

use crate::database::{DatabaseBuilder, TrajectoryDatabase};
use crate::types::ObjectId;

/// Errors produced while parsing the text format.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure while reading the file.
    Io(io::Error),
    /// A data line did not have exactly four comma-separated fields.
    BadFieldCount {
        /// 1-based line number.
        line: usize,
        /// Number of fields found.
        found: usize,
    },
    /// A field failed to parse as the expected numeric type.
    BadField {
        /// 1-based line number.
        line: usize,
        /// Name of the offending field.
        field: &'static str,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::BadFieldCount { line, found } => {
                write!(f, "line {line}: expected 4 fields, found {found}")
            }
            ParseError::BadField { line, field } => {
                write!(f, "line {line}: could not parse field `{field}`")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Serialises a database to the text format.
pub fn to_string(db: &TrajectoryDatabase) -> String {
    let mut out = String::new();
    out.push_str("# object_id,timestamp,x,y\n");
    for traj in db.iter() {
        for s in traj.samples() {
            // Writing to a String cannot fail.
            let _ = writeln!(
                out,
                "{},{},{},{}",
                traj.id().raw(),
                s.time,
                s.position.x,
                s.position.y
            );
        }
    }
    out
}

/// Parses a database from the text format.
pub fn from_str(text: &str) -> Result<TrajectoryDatabase, ParseError> {
    let mut builder = DatabaseBuilder::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 4 {
            return Err(ParseError::BadFieldCount {
                line: lineno + 1,
                found: fields.len(),
            });
        }
        let id: u32 = fields[0].trim().parse().map_err(|_| ParseError::BadField {
            line: lineno + 1,
            field: "object_id",
        })?;
        let time: u32 = fields[1].trim().parse().map_err(|_| ParseError::BadField {
            line: lineno + 1,
            field: "timestamp",
        })?;
        let x: f64 = fields[2].trim().parse().map_err(|_| ParseError::BadField {
            line: lineno + 1,
            field: "x",
        })?;
        let y: f64 = fields[3].trim().parse().map_err(|_| ParseError::BadField {
            line: lineno + 1,
            field: "y",
        })?;
        builder.push(ObjectId::new(id), time, Point::new(x, y));
    }
    Ok(builder.build())
}

/// Writes a database to a file in the text format.
pub fn write_file(db: &TrajectoryDatabase, path: impl AsRef<Path>) -> io::Result<()> {
    fs::write(path, to_string(db))
}

/// Reads a database from a file in the text format.
pub fn read_file(path: impl AsRef<Path>) -> Result<TrajectoryDatabase, ParseError> {
    let text = fs::read_to_string(path)?;
    from_str(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trajectory::Trajectory;
    use crate::types::TimeInterval;

    fn sample_db() -> TrajectoryDatabase {
        TrajectoryDatabase::from_trajectories(vec![
            Trajectory::from_points(ObjectId::new(1), vec![(0, (0.5, 1.5)), (2, (2.5, 3.5))]),
            Trajectory::from_points(ObjectId::new(7), vec![(1, (-4.0, 9.0))]),
        ])
    }

    #[test]
    fn roundtrip_through_string() {
        let db = sample_db();
        let text = to_string(&db);
        let parsed = from_str(&text).unwrap();
        assert_eq!(parsed.len(), db.len());
        assert_eq!(parsed.total_samples(), db.total_samples());
        assert_eq!(
            parsed.get(ObjectId::new(1)).unwrap().samples(),
            db.get(ObjectId::new(1)).unwrap().samples()
        );
        assert_eq!(parsed.time_domain(), Some(TimeInterval::new(0, 2)));
    }

    #[test]
    fn roundtrip_through_file() {
        let dir = std::env::temp_dir().join("gpdt_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.traj");
        let db = sample_db();
        write_file(&db, &path).unwrap();
        let parsed = read_file(&path).unwrap();
        assert_eq!(parsed.total_samples(), db.total_samples());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# header\n\n1,0,1.0,2.0\n   \n# trailing comment\n";
        let db = from_str(text).unwrap();
        assert_eq!(db.total_samples(), 1);
    }

    #[test]
    fn bad_field_count_reports_line() {
        let err = from_str("1,0,1.0\n").unwrap_err();
        match err {
            ParseError::BadFieldCount { line, found } => {
                assert_eq!(line, 1);
                assert_eq!(found, 3);
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn bad_numeric_field_reports_field_name() {
        let err = from_str("1,zero,1.0,2.0\n").unwrap_err();
        match err {
            ParseError::BadField { line, field } => {
                assert_eq!(line, 1);
                assert_eq!(field, "timestamp");
            }
            other => panic!("unexpected error: {other}"),
        }
        assert!(from_str("x,0,1.0,2.0\n").is_err());
        assert!(from_str("1,0,one,2.0\n").is_err());
        assert!(from_str("1,0,1.0,two\n").is_err());
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_file("/nonexistent/definitely/missing.traj").unwrap_err();
        assert!(matches!(err, ParseError::Io(_)));
        assert!(err.to_string().contains("i/o error"));
    }
}
