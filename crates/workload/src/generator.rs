//! The scenario simulator.
//!
//! One tick is one minute.  Every taxi contributes one sample per tick, so a
//! generated database is temporally dense (the interpolation path of the
//! trajectory crate is still exercised by tests and by callers that thin the
//! samples out).

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gpdt_geo::Point;
use gpdt_trajectory::{DatabaseBuilder, ObjectId, TimeInterval, TrajectoryDatabase};

use crate::config::{Regime, ScenarioConfig, Weather};
use crate::events::{EventKind, PlantedEvent};

/// The output of the generator: the trajectory database plus the ground-truth
/// list of planted events.
#[derive(Debug, Clone)]
pub struct GeneratedScenario {
    /// The synthetic trajectory database.
    pub database: TrajectoryDatabase,
    /// The congregation events that were planted, as ground truth.
    pub events: Vec<PlantedEvent>,
    /// The configuration that produced this scenario.
    pub config: ScenarioConfig,
}

impl GeneratedScenario {
    /// Planted events of one kind.
    pub fn events_of_kind(&self, kind: EventKind) -> Vec<&PlantedEvent> {
        self.events.iter().filter(|e| e.kind == kind).collect()
    }
}

/// What a taxi is currently doing.
#[derive(Debug, Clone)]
enum Mode {
    /// Driving between random waypoints.
    Roam,
    /// Committed to a congregation event: drive to `target`, dwell there
    /// until `depart`, then resume roaming.
    Event {
        target: Point,
        arrive: u32,
        depart: u32,
        /// Position at the moment of recruitment (for the approach leg).
        from: Point,
        recruited: u32,
    },
    /// Travelling as part of a convoy flow until `until`.
    Convoy {
        velocity: (f64, f64),
        started: u32,
        until: u32,
        anchor: Point,
        offset: (f64, f64),
    },
}

#[derive(Debug, Clone)]
struct Taxi {
    pos: Point,
    dest: Point,
    speed: f64,
    mode: Mode,
}

struct ActiveEvent {
    kind: EventKind,
    center: Point,
    start: u32,
    end: u32,
    regime: Regime,
    core: Vec<ObjectId>,
    transient: Vec<ObjectId>,
    /// Transient vehicles recruited per minute while the event is active.
    churn_per_min: u32,
    /// Dwell-time bounds (minutes) for transient vehicles.
    churn_dwell: (u32, u32),
    /// Taxis already recruited by this event; a vehicle visits an incident at
    /// most once, so venue churn never accumulates enough occurrences to turn
    /// a passer-by into a participator.
    recruited: HashSet<usize>,
}

/// Generates a scenario deterministically from its configuration.
pub fn generate_scenario(config: &ScenarioConfig) -> GeneratedScenario {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut sim = Simulation::new(config, &mut rng);
    for tick in 0..config.duration {
        sim.step(tick, &mut rng);
    }
    sim.finish(config)
}

struct Simulation {
    taxis: Vec<Taxi>,
    events: Vec<ActiveEvent>,
    builder: DatabaseBuilder,
    weather: Weather,
    area: f64,
    start_minute: u32,
    duration: u32,
    rates: crate::config::EventRates,
}

impl Simulation {
    fn new(config: &ScenarioConfig, rng: &mut StdRng) -> Self {
        let taxis = (0..config.num_taxis)
            .map(|_| {
                let pos = random_point(rng, config.area_size);
                Taxi {
                    pos,
                    dest: random_point(rng, config.area_size),
                    speed: roam_speed(rng, config.weather),
                    mode: Mode::Roam,
                }
            })
            .collect();
        Simulation {
            taxis,
            events: Vec::new(),
            builder: DatabaseBuilder::new(),
            weather: config.weather,
            area: config.area_size,
            start_minute: config.start_minute_of_day,
            duration: config.duration,
            rates: config.event_rates,
        }
    }

    fn step(&mut self, tick: u32, rng: &mut StdRng) {
        let regime = Regime::for_minute_of_day(self.start_minute + tick);
        self.maybe_spawn_events(tick, regime, rng);
        self.recruit_churn(tick, rng);
        self.move_taxis(tick, rng);
    }

    fn maybe_spawn_events(&mut self, tick: u32, regime: Regime, rng: &mut StdRng) {
        // Leave room for the event to play out before the scenario ends.
        if tick + 15 >= self.duration {
            return;
        }
        let jam_rate = self.rates.jams(regime) * self.weather.jam_factor() / 60.0;
        if rng.gen::<f64>() < jam_rate {
            self.spawn_jam(tick, regime, rng);
        }
        let venue_rate = self.rates.venues(regime) / 60.0;
        if rng.gen::<f64>() < venue_rate {
            self.spawn_venue(tick, regime, rng);
        }
        let convoy_rate = self.rates.convoys(regime) * self.weather.convoy_factor() / 60.0;
        if rng.gen::<f64>() < convoy_rate {
            self.spawn_convoy(tick, regime, rng);
        }
    }

    fn roaming_taxis(&self, count: usize, rng: &mut StdRng) -> Vec<usize> {
        self.roaming_taxis_excluding(count, rng, None)
    }

    /// Picks up to `count` roaming taxis, optionally excluding the taxis an
    /// event has already recruited once.
    fn roaming_taxis_excluding(
        &self,
        count: usize,
        rng: &mut StdRng,
        exclude: Option<&HashSet<usize>>,
    ) -> Vec<usize> {
        let mut free: Vec<usize> = self
            .taxis
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t.mode, Mode::Roam))
            .filter(|(i, _)| exclude.is_none_or(|set| !set.contains(i)))
            .map(|(i, _)| i)
            .collect();
        // Fisher–Yates prefix shuffle to pick a random subset.
        let take = count.min(free.len());
        for i in 0..take {
            let j = rng.gen_range(i..free.len());
            free.swap(i, j);
        }
        free.truncate(take);
        free
    }

    fn spawn_jam(&mut self, tick: u32, regime: Regime, rng: &mut StdRng) {
        let duration = rng.gen_range(30u32..=50).min(self.duration - tick - 1);
        let center = random_point(rng, self.area);
        let core_size = rng.gen_range(16usize..=22);
        let members = self.roaming_taxis(core_size, rng);
        if members.len() < core_size / 2 {
            return; // fleet exhausted; skip the event
        }
        let end = tick + duration;
        let mut core = Vec::new();
        for &taxi_idx in &members {
            let arrive = tick + rng.gen_range(2u32..=5);
            // Core vehicles stay until (almost) the end of the jam.
            let depart = end.saturating_sub(rng.gen_range(0u32..=3)).max(arrive + 1);
            let jitter = random_offset(rng, 60.0);
            self.taxis[taxi_idx].mode = Mode::Event {
                target: Point::new(center.x + jitter.0, center.y + jitter.1),
                arrive,
                depart,
                from: self.taxis[taxi_idx].pos,
                recruited: tick,
            };
            core.push(ObjectId::new(taxi_idx as u32));
        }
        self.events.push(ActiveEvent {
            kind: EventKind::TrafficJam,
            center,
            start: tick,
            end,
            regime,
            core,
            transient: Vec::new(),
            churn_per_min: rng.gen_range(2u32..=4),
            churn_dwell: (3, 6),
            recruited: members.into_iter().collect(),
        });
    }

    fn spawn_venue(&mut self, tick: u32, regime: Regime, rng: &mut StdRng) {
        let duration = rng.gen_range(35u32..=60).min(self.duration - tick - 1);
        let center = random_point(rng, self.area);
        // Seed the venue with an initial batch so it reaches critical mass
        // quickly.
        let initial = self.roaming_taxis(12, rng);
        if initial.is_empty() {
            return; // fleet exhausted; skip the event
        }
        let event_idx = self.events.len();
        self.events.push(ActiveEvent {
            kind: EventKind::Venue,
            center,
            start: tick,
            end: tick + duration,
            regime,
            core: Vec::new(),
            transient: Vec::new(),
            churn_per_min: rng.gen_range(5u32..=7),
            churn_dwell: (3, 6),
            recruited: HashSet::new(),
        });
        for taxi_idx in initial {
            self.recruit_transient(event_idx, taxi_idx, tick, rng);
        }
    }

    fn spawn_convoy(&mut self, tick: u32, regime: Regime, rng: &mut StdRng) {
        let duration = rng.gen_range(12u32..=20).min(self.duration - tick - 1);
        let group_size = rng.gen_range(15usize..=18);
        let members = self.roaming_taxis(group_size, rng);
        if members.len() < 12 {
            return;
        }
        let start_point = random_point(rng, self.area * 0.8);
        let angle = rng.gen_range(0.0..std::f64::consts::TAU);
        let speed = rng.gen_range(240.0..320.0) * self.weather.speed_factor();
        let velocity = (speed * angle.cos(), speed * angle.sin());
        let mut core = Vec::new();
        for &taxi_idx in &members {
            let offset = random_offset(rng, 70.0);
            self.taxis[taxi_idx].pos =
                Point::new(start_point.x + offset.0, start_point.y + offset.1);
            self.taxis[taxi_idx].mode = Mode::Convoy {
                velocity,
                started: tick,
                until: tick + duration,
                anchor: start_point,
                offset,
            };
            core.push(ObjectId::new(taxi_idx as u32));
        }
        self.events.push(ActiveEvent {
            kind: EventKind::ConvoyFlow,
            center: start_point,
            start: tick,
            end: tick + duration,
            regime,
            core,
            transient: Vec::new(),
            churn_per_min: 0,
            churn_dwell: (0, 0),
            recruited: members.into_iter().collect(),
        });
    }

    fn recruit_churn(&mut self, tick: u32, rng: &mut StdRng) {
        let recruiting: Vec<(usize, u32)> = self
            .events
            .iter()
            .enumerate()
            .filter(|(_, e)| e.churn_per_min > 0 && tick >= e.start && tick + 4 < e.end)
            .map(|(idx, e)| (idx, e.churn_per_min))
            .collect();
        for (event_idx, per_min) in recruiting {
            let already = self.events[event_idx].recruited.clone();
            let picks = self.roaming_taxis_excluding(per_min as usize, rng, Some(&already));
            for taxi_idx in picks {
                self.recruit_transient(event_idx, taxi_idx, tick, rng);
            }
        }
    }

    fn recruit_transient(
        &mut self,
        event_idx: usize,
        taxi_idx: usize,
        tick: u32,
        rng: &mut StdRng,
    ) {
        let (center, end, dwell_range) = {
            let e = &self.events[event_idx];
            (e.center, e.end, e.churn_dwell)
        };
        let arrive = tick + rng.gen_range(1u32..=3);
        let dwell: u32 = rng.gen_range(dwell_range.0..=dwell_range.1.max(dwell_range.0));
        let depart = (arrive + dwell).min(end);
        if depart <= arrive {
            return;
        }
        let jitter = random_offset(rng, 55.0);
        self.taxis[taxi_idx].mode = Mode::Event {
            target: Point::new(center.x + jitter.0, center.y + jitter.1),
            arrive,
            depart,
            from: self.taxis[taxi_idx].pos,
            recruited: tick,
        };
        self.events[event_idx]
            .transient
            .push(ObjectId::new(taxi_idx as u32));
        self.events[event_idx].recruited.insert(taxi_idx);
    }

    fn move_taxis(&mut self, tick: u32, rng: &mut StdRng) {
        let weather = self.weather;
        let area = self.area;
        for (idx, taxi) in self.taxis.iter_mut().enumerate() {
            match taxi.mode.clone() {
                Mode::Roam => {
                    advance_towards(taxi, taxi.dest, taxi.speed);
                    if taxi.pos.distance(&taxi.dest) < taxi.speed {
                        taxi.dest = random_point(rng, area);
                        taxi.speed = roam_speed(rng, weather);
                    }
                }
                Mode::Event {
                    target,
                    arrive,
                    depart,
                    from,
                    recruited,
                    ..
                } => {
                    if tick >= depart {
                        taxi.mode = Mode::Roam;
                        taxi.dest = random_point(rng, area);
                        taxi.speed = roam_speed(rng, weather);
                        advance_towards(taxi, taxi.dest, taxi.speed);
                    } else if tick >= arrive {
                        // Dwell at the event with a small positional jitter.
                        taxi.pos = Point::new(
                            target.x + rng.gen_range(-4.0..4.0),
                            target.y + rng.gen_range(-4.0..4.0),
                        );
                    } else {
                        // Approach leg: interpolate from the recruitment
                        // position so arrival lands exactly on `arrive`.
                        let total = (arrive - recruited).max(1) as f64;
                        let done = (tick + 1 - recruited) as f64;
                        taxi.pos = from.lerp(&target, (done / total).min(1.0));
                    }
                }
                Mode::Convoy {
                    velocity,
                    started,
                    until,
                    anchor,
                    offset,
                } => {
                    if tick >= until {
                        taxi.mode = Mode::Roam;
                        taxi.dest = random_point(rng, area);
                        taxi.speed = roam_speed(rng, weather);
                    } else {
                        // The platoon translates rigidly along its velocity;
                        // each member keeps its fixed offset plus a little
                        // per-minute jitter.
                        let age = (tick - started) as f64;
                        taxi.pos = Point::new(
                            anchor.x + velocity.0 * age + offset.0 + rng.gen_range(-5.0..5.0),
                            anchor.y + velocity.1 * age + offset.1 + rng.gen_range(-5.0..5.0),
                        );
                    }
                }
            }
            self.builder.push(ObjectId::new(idx as u32), tick, taxi.pos);
        }
    }

    fn finish(self, config: &ScenarioConfig) -> GeneratedScenario {
        let events = self
            .events
            .into_iter()
            .map(|e| PlantedEvent {
                kind: e.kind,
                center: e.center,
                interval: TimeInterval::new(e.start, e.end.min(self.duration.saturating_sub(1))),
                regime: e.regime,
                core_members: e.core,
                transient_members: e.transient,
            })
            .collect();
        GeneratedScenario {
            database: self.builder.build(),
            events,
            config: *config,
        }
    }
}

// --- helpers -----------------------------------------------------------

fn random_point(rng: &mut StdRng, area: f64) -> Point {
    Point::new(rng.gen_range(0.0..area), rng.gen_range(0.0..area))
}

fn random_offset(rng: &mut StdRng, radius: f64) -> (f64, f64) {
    let angle = rng.gen_range(0.0..std::f64::consts::TAU);
    let r = radius * rng.gen::<f64>().sqrt();
    (r * angle.cos(), r * angle.sin())
}

fn roam_speed(rng: &mut StdRng, weather: Weather) -> f64 {
    rng.gen_range(300.0..550.0) * weather.speed_factor()
}

fn advance_towards(taxi: &mut Taxi, dest: Point, speed: f64) {
    let dist = taxi.pos.distance(&dest);
    if dist <= speed {
        taxi.pos = dest;
    } else {
        taxi.pos = taxi.pos.lerp(&dest, speed / dist);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EventRates;

    #[test]
    fn generation_is_deterministic() {
        let config = ScenarioConfig::small_demo(123);
        let a = generate_scenario(&config);
        let b = generate_scenario(&config);
        assert_eq!(a.database.total_samples(), b.database.total_samples());
        assert_eq!(a.events.len(), b.events.len());
        for (ea, eb) in a.events.iter().zip(&b.events) {
            assert_eq!(ea, eb);
        }
        // Spot-check a trajectory.
        let id = ObjectId::new(0);
        assert_eq!(
            a.database.get(id).unwrap().samples(),
            b.database.get(id).unwrap().samples()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_scenario(&ScenarioConfig::small_demo(1));
        let b = generate_scenario(&ScenarioConfig::small_demo(2));
        let ta = a.database.get(ObjectId::new(0)).unwrap();
        let tb = b.database.get(ObjectId::new(0)).unwrap();
        assert_ne!(ta.samples()[5].position, tb.samples()[5].position);
    }

    #[test]
    fn every_taxi_has_one_sample_per_tick() {
        let config = ScenarioConfig::small_demo(7);
        let scenario = generate_scenario(&config);
        assert_eq!(scenario.database.len(), config.num_taxis);
        assert_eq!(
            scenario.database.total_samples(),
            config.num_taxis * config.duration as usize
        );
        for traj in scenario.database.iter() {
            assert_eq!(traj.len(), config.duration as usize);
            assert_eq!(traj.lifespan(), TimeInterval::new(0, config.duration - 1));
        }
    }

    #[test]
    fn positions_stay_roughly_within_the_city() {
        let config = ScenarioConfig::small_demo(11);
        let scenario = generate_scenario(&config);
        // Convoys can drift a little outside; allow a generous margin.
        let margin = 10_000.0;
        for traj in scenario.database.iter() {
            for s in traj.samples() {
                assert!(s.position.x > -margin && s.position.x < config.area_size + margin);
                assert!(s.position.y > -margin && s.position.y < config.area_size + margin);
                assert!(s.position.is_finite());
            }
        }
    }

    #[test]
    fn jam_core_members_dwell_near_the_event_center() {
        // Force frequent jams so the small demo certainly contains one.
        let mut config = ScenarioConfig::small_demo(5);
        config.event_rates = EventRates {
            jams_per_hour: [60.0, 60.0, 60.0],
            venues_per_hour: [0.0, 0.0, 0.0],
            convoys_per_hour: [0.0, 0.0, 0.0],
        };
        let scenario = generate_scenario(&config);
        let jams = scenario.events_of_kind(EventKind::TrafficJam);
        assert!(!jams.is_empty());
        let jam = jams[0];
        assert!(jam.core_members.len() >= 8);
        // During the middle of the jam, every core member is within ~100 m of
        // the centre.
        let mid = (jam.interval.start + jam.interval.end) / 2;
        for &member in &jam.core_members {
            let pos = scenario
                .database
                .get(member)
                .unwrap()
                .position_at(mid)
                .unwrap();
            assert!(
                pos.distance(&jam.center) < 150.0,
                "core member {member} is {:.0} m away at tick {mid}",
                pos.distance(&jam.center)
            );
        }
    }

    #[test]
    fn venue_events_have_only_transient_members() {
        let mut config = ScenarioConfig::small_demo(9);
        config.event_rates = EventRates {
            jams_per_hour: [0.0, 0.0, 0.0],
            venues_per_hour: [60.0, 60.0, 60.0],
            convoys_per_hour: [0.0, 0.0, 0.0],
        };
        let scenario = generate_scenario(&config);
        let venues = scenario.events_of_kind(EventKind::Venue);
        assert!(!venues.is_empty());
        for venue in venues {
            assert!(venue.core_members.is_empty());
            assert!(venue.total_members() > 0);
        }
    }

    #[test]
    fn convoy_members_travel_together() {
        let mut config = ScenarioConfig::small_demo(13);
        config.event_rates = EventRates {
            jams_per_hour: [0.0, 0.0, 0.0],
            venues_per_hour: [0.0, 0.0, 0.0],
            convoys_per_hour: [60.0, 60.0, 60.0],
        };
        let scenario = generate_scenario(&config);
        let convoys = scenario.events_of_kind(EventKind::ConvoyFlow);
        assert!(!convoys.is_empty());
        let convoy = convoys[0];
        assert!(convoy.core_members.len() >= 12);
        // Mid-flow, all members stay within a few hundred metres of each
        // other (they share the same velocity and anchor).
        let mid = (convoy.interval.start + convoy.interval.end) / 2;
        let positions: Vec<Point> = convoy
            .core_members
            .iter()
            .map(|&m| scenario.database.get(m).unwrap().position_at(mid).unwrap())
            .collect();
        let centroid = Point::centroid(&positions).unwrap();
        for p in &positions {
            assert!(p.distance(&centroid) < 300.0);
        }
    }

    #[test]
    fn snowy_weather_plants_more_jams_than_clear() {
        let base = ScenarioConfig {
            seed: 31,
            num_taxis: 400,
            duration: 300,
            start_minute_of_day: 7 * 60,
            weather: Weather::Clear,
            area_size: 10_000.0,
            event_rates: EventRates::city_default(),
        };
        let clear = generate_scenario(&base);
        let snowy = generate_scenario(&ScenarioConfig {
            weather: Weather::Snowy,
            ..base
        });
        let clear_jams = clear.events_of_kind(EventKind::TrafficJam).len();
        let snowy_jams = snowy.events_of_kind(EventKind::TrafficJam).len();
        assert!(
            snowy_jams > clear_jams,
            "snowy {snowy_jams} vs clear {clear_jams}"
        );
    }

    #[test]
    fn peak_hours_plant_more_jams_than_work_hours() {
        let peak = ScenarioConfig {
            seed: 77,
            num_taxis: 400,
            duration: 240,
            start_minute_of_day: 6 * 60,
            weather: Weather::Clear,
            area_size: 10_000.0,
            event_rates: EventRates::city_default(),
        };
        let work = ScenarioConfig {
            start_minute_of_day: 11 * 60,
            ..peak
        };
        let peak_jams = generate_scenario(&peak)
            .events_of_kind(EventKind::TrafficJam)
            .len();
        let work_jams = generate_scenario(&work)
            .events_of_kind(EventKind::TrafficJam)
            .len();
        assert!(
            peak_jams > work_jams,
            "peak {peak_jams} vs work {work_jams}"
        );
    }
}
