//! Synthetic taxi-trajectory workload generator.
//!
//! The paper evaluates on a proprietary Beijing taxi dataset (T-Drive: about
//! 120 K trajectories from 33 000 taxis over three months).  That dataset is
//! not publicly redistributable, so this crate provides a **deterministic,
//! seedable substitute**: a city-scale simulation that produces taxi-like
//! trajectories with the properties the paper's experiments depend on:
//!
//! * a large fleet of *background* taxis criss-crossing the city between
//!   random waypoints (they produce incidental density but few patterns),
//! * **traffic jams** — congregation events where a core of vehicles is
//!   stuck together for tens of minutes (producing crowds *and* gatherings),
//! * **venue events** — drop-off hotspots (restaurants, malls) with high
//!   membership churn (producing crowds that are *not* gatherings),
//! * **convoy flows** — platoons of vehicles travelling a corridor together
//!   (producing convoys and swarms for the baseline comparison),
//!
//! with event rates that depend on the **time of day** (peak / work / casual)
//! and the **weather** (clear / rainy / snowy), calibrated to reproduce the
//! qualitative shape of the paper's Figure 5.
//!
//! Everything is driven by a single `u64` seed: the same
//! [`ScenarioConfig`] always yields the same [`GeneratedScenario`].

pub mod config;
pub mod events;
pub mod generator;

pub use config::{EventRates, Regime, ScenarioConfig, Weather};
pub use events::{EventKind, PlantedEvent};
pub use generator::{generate_scenario, GeneratedScenario};
