//! Scenario configuration: fleet size, duration, weather and event rates.

/// Weather regimes of the paper's Figure 5b.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Weather {
    /// Dry roads, normal speeds, baseline jam rate.
    #[default]
    Clear,
    /// Reduced speeds, noticeably more congestion.
    Rainy,
    /// Strongly reduced speeds, frequent congestion, vehicles keep larger
    /// headways (fewer convoys).
    Snowy,
}

impl Weather {
    /// All weather regimes in the order of the paper's Figure 5b.
    pub const ALL: [Weather; 3] = [Weather::Clear, Weather::Rainy, Weather::Snowy];

    /// Multiplier applied to free-flow vehicle speed.
    pub fn speed_factor(&self) -> f64 {
        match self {
            Weather::Clear => 1.0,
            Weather::Rainy => 0.8,
            Weather::Snowy => 0.55,
        }
    }

    /// Multiplier applied to the traffic-jam spawn rate.
    pub fn jam_factor(&self) -> f64 {
        match self {
            Weather::Clear => 1.0,
            Weather::Rainy => 1.8,
            Weather::Snowy => 3.0,
        }
    }

    /// Multiplier applied to the convoy-flow spawn rate (vehicles avoid
    /// travelling closely in bad weather).
    pub fn convoy_factor(&self) -> f64 {
        match self {
            Weather::Clear => 1.0,
            Weather::Rainy => 0.9,
            Weather::Snowy => 0.55,
        }
    }

    /// Label used in benchmark output.
    pub fn label(&self) -> &'static str {
        match self {
            Weather::Clear => "clear",
            Weather::Rainy => "rainy",
            Weather::Snowy => "snowy",
        }
    }
}

impl std::fmt::Display for Weather {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Time-of-day regimes, following the paper's split of a day.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Regime {
    /// 6 am – 10 am and 5 pm – 8 pm.
    Peak,
    /// 10 am – 5 pm.
    Work,
    /// 8 pm – 6 am.
    Casual,
}

impl Regime {
    /// All regimes in the order of the paper's Figure 5a.
    pub const ALL: [Regime; 3] = [Regime::Peak, Regime::Work, Regime::Casual];

    /// The regime governing a given minute of the day (`0..1440`).
    pub fn for_minute_of_day(minute: u32) -> Regime {
        let hour = (minute % 1440) / 60;
        match hour {
            6..=9 | 17..=19 => Regime::Peak,
            10..=16 => Regime::Work,
            _ => Regime::Casual,
        }
    }

    /// Label used in benchmark output.
    pub fn label(&self) -> &'static str {
        match self {
            Regime::Peak => "peak time",
            Regime::Work => "work time",
            Regime::Casual => "casual time",
        }
    }
}

impl std::fmt::Display for Regime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Expected number of congregation events spawned per hour, per regime.
///
/// These rates, together with the weather multipliers, are the calibration
/// knobs that reproduce the *shape* of the paper's Figure 5 (see DESIGN.md
/// §5 for the substitution rationale).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventRates {
    /// Traffic jams per hour during peak / work / casual time.
    pub jams_per_hour: [f64; 3],
    /// Venue (drop-off) events per hour during peak / work / casual time.
    pub venues_per_hour: [f64; 3],
    /// Convoy flows per hour during peak / work / casual time.
    pub convoys_per_hour: [f64; 3],
}

impl EventRates {
    /// Rates calibrated against the paper's Figure 5a: many jams in peak
    /// time, many venues (but few jams) in casual time, little of either
    /// during work time.
    pub fn city_default() -> Self {
        EventRates {
            //                  peak  work  casual
            jams_per_hour: [9.0, 2.0, 1.5],
            venues_per_hour: [3.0, 2.0, 8.0],
            convoys_per_hour: [6.0, 1.5, 5.0],
        }
    }

    fn index(regime: Regime) -> usize {
        match regime {
            Regime::Peak => 0,
            Regime::Work => 1,
            Regime::Casual => 2,
        }
    }

    /// Jam rate for a regime (events per hour).
    pub fn jams(&self, regime: Regime) -> f64 {
        self.jams_per_hour[Self::index(regime)]
    }

    /// Venue rate for a regime (events per hour).
    pub fn venues(&self, regime: Regime) -> f64 {
        self.venues_per_hour[Self::index(regime)]
    }

    /// Convoy rate for a regime (events per hour).
    pub fn convoys(&self, regime: Regime) -> f64 {
        self.convoys_per_hour[Self::index(regime)]
    }
}

impl Default for EventRates {
    fn default() -> Self {
        EventRates::city_default()
    }
}

/// Full description of a synthetic scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioConfig {
    /// Seed for the deterministic random generator.
    pub seed: u64,
    /// Number of taxis in the fleet.
    pub num_taxis: usize,
    /// Length of the scenario in minutes (one sample per taxi per minute).
    pub duration: u32,
    /// Minute of day at which the scenario starts (`0 = midnight`); the
    /// time-of-day regimes are derived from this.
    pub start_minute_of_day: u32,
    /// Weather regime, affecting speeds and event rates.
    pub weather: Weather,
    /// Side length of the (square) simulated city in metres.
    pub area_size: f64,
    /// Event spawn rates per regime.
    pub event_rates: EventRates,
}

impl ScenarioConfig {
    /// A tiny scene (a few dozen taxis, one hour) for examples and tests.
    pub fn small_demo(seed: u64) -> Self {
        ScenarioConfig {
            seed,
            num_taxis: 60,
            duration: 60,
            start_minute_of_day: 8 * 60, // morning peak
            weather: Weather::Clear,
            area_size: 5_000.0,
            event_rates: EventRates::city_default(),
        }
    }

    /// A full synthetic day (1440 minutes) with the given weather, scaled to
    /// a fleet that keeps the effectiveness experiments tractable on one
    /// machine.
    pub fn single_day(seed: u64, weather: Weather) -> Self {
        ScenarioConfig {
            seed,
            num_taxis: 1_200,
            duration: 1_440,
            start_minute_of_day: 0,
            weather,
            area_size: 20_000.0,
            event_rates: EventRates::city_default(),
        }
    }

    /// A configurable slice of a day, used by the efficiency sweeps
    /// (Figure 6) where the object count and duration are the variables.
    pub fn efficiency_slice(seed: u64, num_taxis: usize, duration: u32) -> Self {
        ScenarioConfig {
            seed,
            num_taxis,
            duration,
            start_minute_of_day: 7 * 60,
            weather: Weather::Clear,
            area_size: 12_000.0,
            event_rates: EventRates::city_default(),
        }
    }

    /// Returns a copy with a different fleet size.
    pub fn with_taxis(mut self, num_taxis: usize) -> Self {
        self.num_taxis = num_taxis;
        self
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig::small_demo(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regime_boundaries_match_the_paper() {
        assert_eq!(Regime::for_minute_of_day(6 * 60), Regime::Peak);
        assert_eq!(Regime::for_minute_of_day(9 * 60 + 59), Regime::Peak);
        assert_eq!(Regime::for_minute_of_day(10 * 60), Regime::Work);
        assert_eq!(Regime::for_minute_of_day(16 * 60 + 59), Regime::Work);
        assert_eq!(Regime::for_minute_of_day(17 * 60), Regime::Peak);
        assert_eq!(Regime::for_minute_of_day(19 * 60 + 59), Regime::Peak);
        assert_eq!(Regime::for_minute_of_day(20 * 60), Regime::Casual);
        assert_eq!(Regime::for_minute_of_day(0), Regime::Casual);
        assert_eq!(Regime::for_minute_of_day(5 * 60 + 59), Regime::Casual);
        // Wraps around past midnight.
        assert_eq!(Regime::for_minute_of_day(1440 + 8 * 60), Regime::Peak);
    }

    #[test]
    fn weather_factors_are_ordered() {
        assert!(Weather::Clear.speed_factor() > Weather::Rainy.speed_factor());
        assert!(Weather::Rainy.speed_factor() > Weather::Snowy.speed_factor());
        assert!(Weather::Clear.jam_factor() < Weather::Rainy.jam_factor());
        assert!(Weather::Rainy.jam_factor() < Weather::Snowy.jam_factor());
        assert!(Weather::Snowy.convoy_factor() < Weather::Clear.convoy_factor());
        assert_eq!(Weather::default(), Weather::Clear);
        assert_eq!(Weather::Snowy.to_string(), "snowy");
        assert_eq!(Regime::Peak.to_string(), "peak time");
    }

    #[test]
    fn event_rates_reflect_figure5_shape() {
        let rates = EventRates::city_default();
        // Most jams in peak time; most venue churn in casual time.
        assert!(rates.jams(Regime::Peak) > rates.jams(Regime::Work));
        assert!(rates.jams(Regime::Peak) > rates.jams(Regime::Casual));
        assert!(rates.venues(Regime::Casual) > rates.venues(Regime::Work));
        assert!(rates.convoys(Regime::Peak) > rates.convoys(Regime::Work));
        assert!(rates.convoys(Regime::Casual) > rates.convoys(Regime::Work));
    }

    #[test]
    fn presets_are_deterministic_descriptions() {
        let a = ScenarioConfig::small_demo(7);
        let b = ScenarioConfig::small_demo(7);
        assert_eq!(a, b);
        assert_eq!(a.with_seed(9).seed, 9);
        assert_eq!(a.with_taxis(500).num_taxis, 500);
        let day = ScenarioConfig::single_day(1, Weather::Snowy);
        assert_eq!(day.duration, 1_440);
        assert_eq!(day.weather, Weather::Snowy);
        let slice = ScenarioConfig::efficiency_slice(3, 300, 120);
        assert_eq!(slice.num_taxis, 300);
        assert_eq!(slice.duration, 120);
    }
}
