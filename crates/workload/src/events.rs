//! Ground-truth descriptions of the congregation events planted in a
//! synthetic scenario.

use gpdt_geo::Point;
use gpdt_trajectory::{ObjectId, TimeInterval};

use crate::config::Regime;

/// The kind of congregation event planted by the generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A traffic jam: a core of vehicles stuck together for the whole event
    /// plus a stream of vehicles passing through.  Expected to be detected as
    /// a crowd *and* a gathering.
    TrafficJam,
    /// A venue drop-off hotspot: the spot stays busy but every vehicle leaves
    /// after a few minutes.  Expected to be detected as a crowd but *not* as
    /// a gathering.
    Venue,
    /// A platoon of vehicles travelling a corridor together.  Expected to be
    /// detected by the convoy/swarm baselines.
    ConvoyFlow,
}

impl EventKind {
    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::TrafficJam => "traffic jam",
            EventKind::Venue => "venue",
            EventKind::ConvoyFlow => "convoy flow",
        }
    }
}

impl std::fmt::Display for EventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One event planted by the generator, kept as ground truth so that tests and
/// the effectiveness experiment can check what the miners recover.
#[derive(Debug, Clone, PartialEq)]
pub struct PlantedEvent {
    /// What kind of incident this is.
    pub kind: EventKind,
    /// Where the incident is centred (for convoy flows: the starting point).
    pub center: Point,
    /// The ticks during which the incident is active.
    pub interval: TimeInterval,
    /// The time-of-day regime in which the incident started.
    pub regime: Regime,
    /// Vehicles committed to the incident for (most of) its duration.
    pub core_members: Vec<ObjectId>,
    /// Vehicles that only pass through briefly.
    pub transient_members: Vec<ObjectId>,
}

impl PlantedEvent {
    /// Total number of vehicles involved.
    pub fn total_members(&self) -> usize {
        self.core_members.len() + self.transient_members.len()
    }

    /// Duration of the incident in ticks.
    pub fn duration(&self) -> u32 {
        self.interval.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(EventKind::TrafficJam.label(), "traffic jam");
        assert_eq!(EventKind::Venue.to_string(), "venue");
        assert_eq!(EventKind::ConvoyFlow.to_string(), "convoy flow");
    }

    #[test]
    fn event_accessors() {
        let e = PlantedEvent {
            kind: EventKind::TrafficJam,
            center: Point::new(1.0, 2.0),
            interval: TimeInterval::new(10, 39),
            regime: Regime::Peak,
            core_members: vec![ObjectId::new(1), ObjectId::new(2)],
            transient_members: vec![ObjectId::new(3)],
        };
        assert_eq!(e.total_members(), 3);
        assert_eq!(e.duration(), 30);
    }
}
