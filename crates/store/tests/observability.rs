//! The supervision story as seen through `gpdt-obs`: a seeded fault run
//! must leave the same trail in the metrics registry, in the embedded
//! [`ServiceStats::metrics`] snapshot, and in the flight recorder — with
//! the events in causal order (retries → panic → recovery, degraded enter
//! before exit) and the counters agreeing exactly with what the service
//! itself reports.
//!
//! Everything lives in ONE `#[test]`: the registry, the gate and the
//! flight recorder are process-wide, and a second test thread would race
//! the counter deltas.

use gpdt_clustering::{ClusterDatabase, ClusteringParams};
use gpdt_core::{
    CrowdParams, CrowdRecord, GatheringConfig, GatheringEngine, GatheringParams, GatheringPipeline,
};
use gpdt_store::{
    DecodeError, EngineLoad, FaultPlan, FaultVfs, MonitorService, MonitoredEngine, PatternStore,
    StoreOptions, SupervisorPolicy,
};
use gpdt_trajectory::{ObjectId, TimeInterval, Timestamp, Trajectory, TrajectoryDatabase};
use std::sync::Arc;
use std::time::Duration;

fn config() -> GatheringConfig {
    GatheringConfig::builder()
        .clustering(ClusteringParams::new(60.0, 3))
        .crowd(CrowdParams::new(3, 3, 100.0))
        .gathering(GatheringParams::new(3, 3))
        .build()
        .unwrap()
}

fn snappy_policy() -> SupervisorPolicy {
    SupervisorPolicy {
        max_retries: 4,
        base_backoff: Duration::from_micros(50),
        max_backoff: Duration::from_micros(500),
        jitter_seed: 7,
        checkpoint_interval: 4,
        max_queued_batches: 64,
    }
}

/// Two lingering blobs, one after the other, so crowds finalize (and hit
/// the faulty store) while the stream is still running.
fn scene() -> TrajectoryDatabase {
    let mut trajectories = Vec::new();
    for i in 0..4u32 {
        trajectories.push(Trajectory::from_points(
            ObjectId::new(i),
            (0..8u32)
                .map(|t| (t, (f64::from(i) * 10.0, f64::from(t))))
                .collect::<Vec<_>>(),
        ));
    }
    for i in 10..14u32 {
        trajectories.push(Trajectory::from_points(
            ObjectId::new(i),
            (10..20u32)
                .map(|t| (t, (5_000.0 + f64::from(i) * 10.0, f64::from(t))))
                .collect::<Vec<_>>(),
        ));
    }
    TrajectoryDatabase::from_trajectories(trajectories)
}

fn tick_batches(db: &TrajectoryDatabase) -> Vec<ClusterDatabase> {
    db.time_domain()
        .unwrap()
        .iter()
        .map(|t| ClusterDatabase::build_interval(db, &config().clustering, TimeInterval::new(t, t)))
        .collect()
}

/// Panics on the `n`-th ingested batch, once; the restored wrapper is
/// benign.
struct PanicOnNth {
    inner: GatheringEngine,
    panic_at: Option<u64>,
    seen: u64,
}

impl MonitoredEngine for PanicOnNth {
    fn expected_next_tick(&self) -> Option<Timestamp> {
        self.inner.expected_next_tick()
    }
    fn ingest_batch(&mut self, batch: ClusterDatabase) {
        self.seen += 1;
        if self.panic_at == Some(self.seen) {
            self.panic_at = None;
            panic!("injected ingest panic");
        }
        self.inner.ingest_batch(batch);
    }
    fn finalized_feed(&self) -> &[CrowdRecord] {
        self.inner.finalized_feed()
    }
    fn resolve_database(&self) -> &ClusterDatabase {
        self.inner.resolve_database()
    }
    fn checkpoint_bytes(&self) -> Vec<u8> {
        self.inner.checkpoint_bytes()
    }
    fn restore_bytes(&self, bytes: &[u8]) -> Result<Self, DecodeError> {
        Ok(PanicOnNth {
            inner: self.inner.restore_bytes(bytes)?,
            panic_at: None,
            seen: self.seen,
        })
    }
    fn load(&self) -> EngineLoad {
        self.inner.load()
    }
}

/// Sequence number of the first flight event of `kind` at or after `from`.
fn first_seq(events: &[gpdt_obs::FlightEvent], kind: &str, from: u64) -> Option<u64> {
    events
        .iter()
        .find(|e| e.kind == kind && e.seq >= from)
        .map(|e| e.seq)
}

#[test]
fn seeded_fault_run_is_observable_end_to_end() {
    // The gate and the registry are process-wide; force observability on
    // regardless of the environment, and measure counters as deltas from
    // whatever this process recorded before the run.
    gpdt_obs::set_enabled(true);
    let dump = std::env::temp_dir().join(format!("gpdt-obs-test-dump-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&dump);
    std::env::set_var("GPDT_OBS_DUMP", &dump);

    let before = gpdt_obs::registry().snapshot();
    let base = |name: &str| before.counter(name).unwrap_or(0);
    let (retries0, panics0, recovered0, degraded0) = (
        base("service.retries"),
        base("service.worker_panics"),
        base("service.panics_recovered"),
        base("service.degraded.entries"),
    );
    let seq0 = gpdt_obs::flight().recorded();

    let db = scene();
    let batches = tick_batches(&db);
    let reference = GatheringPipeline::new(config()).discover(&db);

    // A seeded fault VFS under tiny segments, so every append rotates and
    // the transient write/fsync faults actually bite.
    let vfs = FaultVfs::new(0x0B5_2013);
    let store = PatternStore::open_at(
        Arc::new(vfs.clone()),
        "/svc",
        StoreOptions {
            max_segment_bytes: 64,
            ..StoreOptions::default()
        },
    )
    .unwrap();
    let engine = PanicOnNth {
        inner: GatheringEngine::new(config()),
        panic_at: Some(5),
        seen: 0,
    };
    let outcome = MonitorService::run_with(engine, store, snappy_policy(), |handle| {
        // Act 1: transient faults force retries that succeed; batch 5
        // panics the worker, which is rebuilt from the checkpoint.
        vfs.set_plan(FaultPlan {
            transient_write_one_in: Some(3),
            transient_sync_one_in: Some(3),
            ..FaultPlan::default()
        });
        // Split before the first crowd finalizes (t=8): its append — the
        // first store traffic — must land in act 2, where writes fail.
        let mid = 6;
        for batch in batches.iter().take(mid).cloned() {
            handle.ingest(batch);
        }
        handle.flush();
        let act1 = handle.stats();
        assert_eq!(act1.panics_recovered, 1, "{act1:?}");
        assert_eq!(act1.degraded_since, None);

        // Act 2: every write fails, the retry budget runs out, the
        // service degrades — then the weather clears and it recovers.
        vfs.set_plan(FaultPlan {
            transient_write_one_in: Some(1),
            ..FaultPlan::default()
        });
        for batch in batches.iter().skip(mid).cloned() {
            handle.ingest(batch);
        }
        handle.flush();
        assert!(handle.stats().degraded_since.is_some());
        // The process-wide health surface mirrors the transition (this is
        // what the /health endpoint serves).
        let health = gpdt_obs::health::info();
        assert!(health.degraded_since.is_some(), "{health:?}");
        assert!(gpdt_obs::health::degraded_since_nanos().is_some());
        // On demand: the flight recorder over the service channel.
        let journal = handle.flight_recorder();
        assert!(journal.contains("service.degraded.enter"), "{journal}");

        vfs.clear_faults();
        assert!(handle.try_recover());
        handle.flush();
        handle.stats()
    });
    let stats = outcome.value;
    assert_eq!(stats.degraded_since, None);
    let health = gpdt_obs::health::info();
    assert_eq!(
        health.degraded_since, None,
        "recovery must clear the health surface: {health:?}"
    );
    assert_eq!(health.batches_applied, stats.batches_ingested);
    assert_eq!(
        health.last_ingest_tick.map(u64::from),
        Some(u64::from(db.time_domain().unwrap().end))
    );
    assert!(stats.retries > 0, "{stats:?}");
    assert_eq!(stats.panics_recovered, 1);
    assert_eq!(outcome.engine.inner.closed_crowds(), reference.crowds);
    assert_eq!(outcome.engine.inner.gatherings(), reference.gatherings);

    // The registry counters agree exactly with what the service reports.
    let after = gpdt_obs::registry().snapshot();
    let delta = |name: &str, from: u64| after.counter(name).unwrap_or(0) - from;
    assert_eq!(delta("service.retries", retries0), stats.retries);
    assert_eq!(delta("service.worker_panics", panics0), 1);
    assert_eq!(
        delta("service.panics_recovered", recovered0),
        stats.panics_recovered
    );
    assert_eq!(delta("service.degraded.entries", degraded0), 1);

    // The embedded snapshot speaks the same vocabulary: registry counters
    // plus the `service.*` / `engine_load.*` gauges merged from the stats.
    assert_eq!(
        stats.metrics.counter("service.panics_recovered"),
        Some(after.counter("service.panics_recovered").unwrap())
    );
    assert_eq!(stats.metrics.gauge("service.retries"), Some(stats.retries));
    assert!(stats.metrics.gauge("engine_load.resident_ticks").is_some());

    // The flight recorder holds the causal sequence: a retry, then the
    // worker panic and its recovery, then degraded enter before exit.
    let events: Vec<gpdt_obs::FlightEvent> = gpdt_obs::flight()
        .events()
        .into_iter()
        .filter(|e| e.seq >= seq0)
        .collect();
    let retry = first_seq(&events, "service.retry", seq0).expect("retry event");
    let panicked = first_seq(&events, "service.worker.panic", seq0).expect("panic event");
    let recovered =
        first_seq(&events, "service.panic.recovered", panicked).expect("recovery event");
    let enter = first_seq(&events, "service.degraded.enter", seq0).expect("degraded-enter event");
    let exit = first_seq(&events, "service.degraded.exit", enter).expect("degraded-exit event");
    assert!(
        panicked < recovered,
        "panic #{panicked} before recovery #{recovered}"
    );
    assert!(recovered < enter, "act 1 recovery before act 2 degradation");
    assert!(enter < exit, "degraded enter #{enter} before exit #{exit}");
    assert!(
        first_seq(&events, "service.backoff", retry.saturating_sub(1)).is_some(),
        "retries must journal their backoff sleeps"
    );

    // Degraded-mode entry dumped the journal as a post-mortem artifact.
    let dumped = std::fs::read_to_string(&dump).expect("degraded entry writes the dump");
    assert!(dumped.contains("service.degraded.enter"), "{dumped}");
    std::env::remove_var("GPDT_OBS_DUMP");
    let _ = std::fs::remove_file(&dump);
}
