//! A hand-rolled, versioned binary codec.
//!
//! The build container has no crates.io access, so — following the
//! vendored-shim convention of this workspace — serialisation is implemented
//! from scratch instead of pulling in `serde`/`bincode`.  The format is
//! deliberately boring:
//!
//! * all integers are **little-endian fixed width** (`u64` for lengths and
//!   `usize` values, so the format is identical across platforms);
//! * `f64` is stored as its IEEE-754 bit pattern;
//! * sequences are a `u64` element count followed by the elements;
//! * every *file* (checkpoint, store segment) starts with an 8-byte magic
//!   string and a `u16` format version, checked on read so stale readers fail
//!   loudly instead of misinterpreting bytes.
//!
//! [`Encode`] writes a value, [`Decode`] reads one back.  Decoding never
//! panics on malformed input: every length, tag and invariant is validated
//! and violations surface as a [`DecodeError`].  Domain-type implementations
//! live in [`crate::model`].

use std::io::{self, Read, Write};

/// Version of the value-encoding rules themselves (bumped when the layout of
/// any encoded type changes incompatibly).
pub const CODEC_VERSION: u16 = 1;

/// Error produced when decoding malformed, truncated or incompatible input.
#[derive(Debug)]
pub enum DecodeError {
    /// An underlying I/O error (other than a clean end-of-file).
    Io(io::Error),
    /// The input ended in the middle of a value.
    UnexpectedEof,
    /// The file does not start with the expected magic string.
    BadMagic {
        /// The magic string the reader expected.
        expected: [u8; 8],
        /// The bytes actually found.
        found: [u8; 8],
    },
    /// The file's format version is newer than this reader supports (or
    /// zero, which no writer ever produces).
    UnsupportedVersion {
        /// The version found in the file.
        found: u16,
        /// The newest version this reader understands.
        supported: u16,
    },
    /// A record's stored checksum does not match its payload.
    ChecksumMismatch,
    /// The bytes were structurally readable but violate an invariant of the
    /// decoded type (e.g. an empty crowd or a reversed time interval).
    Corrupt(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Io(err) => write!(f, "i/o error while decoding: {err}"),
            DecodeError::UnexpectedEof => write!(f, "input ended in the middle of a value"),
            DecodeError::BadMagic { expected, found } => write!(
                f,
                "bad magic: expected {:?}, found {:?}",
                String::from_utf8_lossy(expected),
                String::from_utf8_lossy(found)
            ),
            DecodeError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported format version {found} (this reader supports up to {supported})"
            ),
            DecodeError::ChecksumMismatch => write!(f, "record checksum mismatch"),
            DecodeError::Corrupt(what) => write!(f, "corrupt value: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DecodeError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for DecodeError {
    fn from(err: io::Error) -> Self {
        if err.kind() == io::ErrorKind::UnexpectedEof {
            DecodeError::UnexpectedEof
        } else {
            DecodeError::Io(err)
        }
    }
}

/// A value that can be written to the binary format.
pub trait Encode {
    /// Writes the value to `w`.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error of the writer; encoding itself is
    /// infallible.
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()>;
}

/// A value that can be read back from the binary format.
pub trait Decode: Sized {
    /// Reads one value from `r`.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the input is truncated, structurally
    /// invalid or violates an invariant of the type.
    fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, DecodeError>;
}

/// Encodes a value into a fresh byte vector.
pub fn encode_to_vec<T: Encode + ?Sized>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value
        .encode(&mut out)
        .expect("writing to a Vec never fails");
    out
}

/// Decodes a value from a byte slice, requiring the slice to be consumed
/// exactly.
///
/// # Errors
///
/// Returns a [`DecodeError`] on malformed input or trailing bytes.
pub fn decode_from_slice<T: Decode>(mut bytes: &[u8]) -> Result<T, DecodeError> {
    let value = T::decode(&mut bytes)?;
    if !bytes.is_empty() {
        return Err(DecodeError::Corrupt("trailing bytes after value"));
    }
    Ok(value)
}

/// Reads exactly `N` bytes, mapping a clean EOF to
/// [`DecodeError::UnexpectedEof`].
fn read_array<const N: usize, R: Read + ?Sized>(r: &mut R) -> Result<[u8; N], DecodeError> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Writes a file header: an 8-byte magic string followed by a `u16` version.
///
/// # Errors
///
/// Propagates writer I/O errors.
pub fn write_header<W: Write + ?Sized>(w: &mut W, magic: &[u8; 8], version: u16) -> io::Result<()> {
    w.write_all(magic)?;
    version.encode(w)
}

/// Reads and checks a file header written by [`write_header`]; returns the
/// version found (which is `1..=supported`).
///
/// # Errors
///
/// Returns [`DecodeError::BadMagic`] or [`DecodeError::UnsupportedVersion`]
/// if the header does not match, besides the usual truncation errors.
pub fn read_header<R: Read + ?Sized>(
    r: &mut R,
    magic: &[u8; 8],
    supported: u16,
) -> Result<u16, DecodeError> {
    let found: [u8; 8] = read_array(r)?;
    if &found != magic {
        return Err(DecodeError::BadMagic {
            expected: *magic,
            found,
        });
    }
    let version = u16::decode(r)?;
    if version == 0 || version > supported {
        return Err(DecodeError::UnsupportedVersion {
            found: version,
            supported,
        });
    }
    Ok(version)
}

/// FNV-1a 64-bit hash, used as the per-record checksum of the segment log.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

macro_rules! int_codec {
    ($($ty:ty),*) => {$(
        impl Encode for $ty {
            fn encode<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
                w.write_all(&self.to_le_bytes())
            }
        }
        impl Decode for $ty {
            fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, DecodeError> {
                Ok(<$ty>::from_le_bytes(read_array(r)?))
            }
        }
    )*};
}

int_codec!(u8, u16, u32, u64);

impl Encode for usize {
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        (*self as u64).encode(w)
    }
}

impl Decode for usize {
    fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, DecodeError> {
        usize::try_from(u64::decode(r)?)
            .map_err(|_| DecodeError::Corrupt("usize value exceeds this platform's pointer width"))
    }
}

impl Encode for f64 {
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        self.to_bits().encode(w)
    }
}

impl Decode for f64 {
    fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, DecodeError> {
        Ok(f64::from_bits(u64::decode(r)?))
    }
}

impl Encode for bool {
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        u8::from(*self).encode(w)
    }
}

impl Decode for bool {
    fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::Corrupt("boolean byte is neither 0 nor 1")),
        }
    }
}

impl Encode for str {
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        self.len().encode(w)?;
        w.write_all(self.as_bytes())
    }
}

impl Encode for String {
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        self.as_str().encode(w)
    }
}

impl Decode for String {
    fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, DecodeError> {
        let bytes: Vec<u8> = Vec::decode(r)?;
        String::from_utf8(bytes).map_err(|_| DecodeError::Corrupt("string is not valid UTF-8"))
    }
}

impl<T: Encode> Encode for [T] {
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        self.len().encode(w)?;
        for item in self {
            item.encode(w)?;
        }
        Ok(())
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        self.as_slice().encode(w)
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, DecodeError> {
        let len = usize::decode(r)?;
        // A corrupt length must not trigger a huge up-front allocation: grow
        // from a bounded initial capacity and let truncation errors surface
        // while reading the elements.
        let mut out = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        match self {
            None => false.encode(w),
            Some(value) => {
                true.encode(w)?;
                value.encode(w)
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, DecodeError> {
        if bool::decode(r)? {
            Ok(Some(T::decode(r)?))
        } else {
            Ok(None)
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        self.0.encode(w)?;
        self.1.encode(w)
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, DecodeError> {
        let a = A::decode(r)?;
        let b = B::decode(r)?;
        Ok((a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: &T) {
        let bytes = encode_to_vec(value);
        let back: T = decode_from_slice(&bytes).expect("roundtrip decodes");
        assert_eq!(&back, value);
    }

    #[test]
    fn primitive_roundtrips() {
        let mut rng = StdRng::seed_from_u64(0xC0DE);
        for _ in 0..256 {
            roundtrip(&rng.gen_range(0u64..u64::MAX));
            roundtrip(&(rng.gen_range(0u64..u64::MAX) as u32));
            roundtrip(&(rng.gen_range(0u64..u64::MAX) as u16));
            roundtrip(&(rng.gen_range(0u64..u64::MAX) as u8));
            roundtrip(&rng.gen_range(-1e12..1e12));
            roundtrip(&(rng.gen_range(0u32..2) == 1));
            roundtrip(&rng.gen_range(0usize..1_000_000));
        }
        roundtrip(&f64::INFINITY);
        roundtrip(&0.0f64);
    }

    #[test]
    fn container_roundtrips() {
        roundtrip(&Vec::<u32>::new());
        roundtrip(&vec![1u32, 2, 3]);
        roundtrip(&None::<u64>);
        roundtrip(&Some(17u64));
        roundtrip(&(3u32, vec![1u8, 2]));
        roundtrip(&String::from("gatherings ✓"));
        roundtrip(&String::new());
    }

    #[test]
    fn every_truncation_of_a_value_fails_cleanly() {
        let value = (vec![1u32, 2, 3], Some(String::from("tail")));
        let bytes = encode_to_vec(&value);
        for cut in 0..bytes.len() {
            let err = decode_from_slice::<(Vec<u32>, Option<String>)>(&bytes[..cut])
                .expect_err("truncated input must not decode");
            assert!(
                matches!(err, DecodeError::UnexpectedEof | DecodeError::Corrupt(_)),
                "cut at {cut}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_to_vec(&7u32);
        bytes.push(0);
        let err = decode_from_slice::<u32>(&bytes).unwrap_err();
        assert!(matches!(err, DecodeError::Corrupt(_)));
    }

    #[test]
    fn invalid_bool_and_utf8_are_corrupt() {
        let err = decode_from_slice::<bool>(&[2]).unwrap_err();
        assert!(matches!(err, DecodeError::Corrupt(_)));
        let mut bytes = encode_to_vec(&3usize);
        bytes.extend_from_slice(&[0xff, 0xfe, 0xfd]);
        let err = decode_from_slice::<String>(&bytes).unwrap_err();
        assert!(matches!(err, DecodeError::Corrupt(_)));
    }

    #[test]
    fn header_checks_magic_and_version() {
        const MAGIC: [u8; 8] = *b"GPDTTEST";
        let mut bytes = Vec::new();
        write_header(&mut bytes, &MAGIC, 1).unwrap();
        assert_eq!(read_header(&mut bytes.as_slice(), &MAGIC, 1).unwrap(), 1);

        // Wrong magic.
        let err = read_header(&mut bytes.as_slice(), b"GPDTELSE", 1).unwrap_err();
        assert!(matches!(err, DecodeError::BadMagic { .. }));

        // Newer version than supported.
        let mut newer = Vec::new();
        write_header(&mut newer, &MAGIC, 2).unwrap();
        let err = read_header(&mut newer.as_slice(), &MAGIC, 1).unwrap_err();
        assert!(matches!(
            err,
            DecodeError::UnsupportedVersion {
                found: 2,
                supported: 1
            }
        ));

        // Version zero is never written and always rejected.
        let mut zero = Vec::new();
        write_header(&mut zero, &MAGIC, 0).unwrap();
        let err = read_header(&mut zero.as_slice(), &MAGIC, 1).unwrap_err();
        assert!(matches!(err, DecodeError::UnsupportedVersion { .. }));
    }

    #[test]
    fn huge_length_prefix_fails_without_allocating() {
        // A corrupt sequence length of u64::MAX must fail with EOF, not abort
        // trying to reserve the capacity.
        let bytes = encode_to_vec(&u64::MAX);
        let err = decode_from_slice::<Vec<u8>>(&bytes).unwrap_err();
        assert!(matches!(
            err,
            DecodeError::UnexpectedEof | DecodeError::Corrupt(_)
        ));
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn display_covers_all_variants() {
        let cases: Vec<DecodeError> = vec![
            DecodeError::Io(io::Error::other("boom")),
            DecodeError::UnexpectedEof,
            DecodeError::BadMagic {
                expected: *b"GPDTSEG\0",
                found: *b"12345678",
            },
            DecodeError::UnsupportedVersion {
                found: 9,
                supported: 1,
            },
            DecodeError::ChecksumMismatch,
            DecodeError::Corrupt("example"),
        ];
        for case in cases {
            assert!(!case.to_string().is_empty());
        }
    }
}
