//! Durability and queries for gathering-pattern discovery.
//!
//! The discovery engine of `gpdt-core` is memory-only: a crash loses the
//! Lemma 4 frontier and every finalized crowd, and once discovery has moved
//! on there is no way to ask *"which gatherings were active in region `R`
//! during `[t1, t2]`?"*.  This crate adds the missing persistence layer, in
//! three pieces:
//!
//! * [`codec`] + [`model`] — a hand-rolled, versioned binary codec (the build
//!   container has no crates.io access, so no `serde`): [`Encode`]/[`Decode`]
//!   implementations for trajectories, snapshot clusters, crowds, gatherings
//!   and every parameter type, with strict validation so malformed files fail
//!   with a [`DecodeError`] instead of a panic.
//! * [`checkpoint`] — [`EngineCheckpoint`], serialising the **full**
//!   [`GatheringEngine`](gpdt_core::GatheringEngine) state (configuration,
//!   cluster database, finalized records, frontier) so a stream can resume
//!   after a crash at any tick boundary with output identical to an
//!   uninterrupted run.
//! * [`store`] — the durable [`PatternStore`]: an append-only segment log of
//!   finalized crowd records with an in-memory interval index over lifespans
//!   and an R-tree (reusing `gpdt-index`) over crowd MBRs, answering
//!   region × time-window queries, per-object participation history and
//!   top-k gatherings by participator count.
//! * [`sharded`] — checkpoint/restore for the partitioned
//!   [`ShardedEngine`](gpdt_shard::ShardedEngine): per-shard
//!   [`EngineCheckpoint`]s composed with the coordinator's merge state.
//! * [`service`] — [`MonitorService`], the concurrent façade: one ingestion
//!   thread feeds the engine (single or sharded, via [`MonitoredEngine`])
//!   and the store while any number of caller threads run queries (std
//!   scoped threads + channels, no runtime), with a [`ServiceStats`]
//!   observability snapshot, retry/backoff on transient store faults, and
//!   a degraded mode that queues ingest while storage is down.
//! * [`vfs`] — the pluggable storage backend: [`RealVfs`] maps to `std::fs`,
//!   the seeded [`FaultVfs`] injects short writes, torn frames, fsync
//!   failures, `ENOSPC` and crash points deterministically, so every
//!   durability claim is tested under real fault schedules.
//!
//! The workspace-root tests `checkpoint_restore.rs` and `store_queries.rs`
//! verify the two load-bearing equivalences: restore-at-any-boundary ≡
//! uninterrupted discovery, and indexed queries ≡ full scans.

pub mod checkpoint;
pub mod codec;
pub mod model;
pub mod service;
pub mod sharded;
pub mod store;
pub mod vfs;

pub use checkpoint::{
    checkpoint_to_vec, restore_from_slice, EngineCheckpoint, CHECKPOINT_MAGIC, CHECKPOINT_VERSION,
};
pub use codec::{decode_from_slice, encode_to_vec, Decode, DecodeError, Encode, CODEC_VERSION};
pub use service::{
    EngineLoad, MonitorOutcome, MonitorService, MonitoredEngine, ServiceError, ServiceHandle,
    ServiceStats, SupervisorPolicy,
};
pub use sharded::{
    restore_sharded_from_slice, sharded_checkpoint_to_vec, SHARDED_CHECKPOINT_MAGIC,
    SHARDED_CHECKPOINT_VERSION,
};
pub use store::{
    GatheringHit, PatternRecord, PatternStore, RecordId, StoreError, StoreOptions, StoredGathering,
    TailRepair, SEGMENT_MAGIC, SEGMENT_VERSION,
};
pub use vfs::{read_file_opt, write_file_atomic, FaultPlan, FaultVfs, RealVfs, Vfs, VfsFile};
