//! Sharded-engine checkpoints: serialise a [`ShardedEngine`] so a partitioned
//! stream can resume after a crash at any tick boundary.
//!
//! A sharded checkpoint is the composition of the per-shard
//! [`EngineCheckpoint`]s with the coordinator state the merge pass needs:
//! the partitioner, the global (retention-bounded) cluster database, the
//! open merge paths, the cross-edge endpoint sets and the merged finalized
//! records.  The per-tick partition layouts are *not* stored — the
//! partitioner is a deterministic function of the cluster contents, so
//! [`ShardedEngine::from_parts`] rebuilds them from the stored database and
//! cross-checks them against the shard engines' own databases, rejecting a
//! checkpoint whose pieces disagree.
//!
//! ```
//! use gpdt_core::GatheringConfig;
//! use gpdt_shard::{GridPartitioner, Partitioner, ShardedEngine};
//! use gpdt_store::EngineCheckpoint;
//! use gpdt_trajectory::{ObjectId, Trajectory, TrajectoryDatabase};
//!
//! let db = TrajectoryDatabase::from_trajectories((0..5u32).map(|i| {
//!     Trajectory::from_points(
//!         ObjectId::new(i),
//!         (0..8u32).map(|t| (t, (i as f64 * 10.0, t as f64))).collect::<Vec<_>>(),
//!     )
//! }));
//! let config = GatheringConfig::builder()
//!     .clustering(gpdt_core::ClusteringParams::new(60.0, 3))
//!     .crowd(gpdt_core::CrowdParams::new(4, 4, 100.0))
//!     .gathering(gpdt_core::GatheringParams::new(3, 3))
//!     .build()
//!     .unwrap();
//!
//! // Stream half, checkpoint, "crash", restore, stream the rest.
//! let partitioner = Partitioner::Grid(GridPartitioner::new(400.0));
//! let mut engine = ShardedEngine::new(config, 3, partitioner);
//! engine.ingest_trajectories_until(&db, 3);
//! let mut bytes = Vec::new();
//! engine.checkpoint(&mut bytes).unwrap();
//! drop(engine);
//!
//! let mut resumed = ShardedEngine::restore(&mut bytes.as_slice()).unwrap();
//! resumed.ingest_trajectories(&db);
//!
//! let mut uninterrupted = ShardedEngine::new(config, 3, partitioner);
//! uninterrupted.ingest_trajectories(&db);
//! assert_eq!(resumed.gatherings(), uninterrupted.gatherings());
//! ```

use std::io::{self, Read, Write};

use gpdt_clustering::{ClusterDatabase, ClusterId};
use gpdt_core::{
    Crowd, CrowdRecord, GatheringConfig, GatheringEngine, RangeSearchStrategy, TadVariant,
};
use gpdt_shard::{GridPartitioner, Partitioner, ShardedEngine};

use crate::checkpoint::EngineCheckpoint;
use crate::codec::{read_header, write_header, Decode, DecodeError, Encode};

/// Magic string at the start of every sharded checkpoint.
pub const SHARDED_CHECKPOINT_MAGIC: [u8; 8] = *b"GPDTSHC\0";

/// Current sharded-checkpoint format version.
///
/// Moves in lockstep with [`crate::CHECKPOINT_VERSION`]: v2 switches the
/// merged cluster database to the columnar set frames (the embedded per-shard
/// engine checkpoints carry their own versioned headers).
pub const SHARDED_CHECKPOINT_VERSION: u16 = 2;

/// An upper bound nobody reasonable exceeds; a corrupt shard count must not
/// drive a decode loop for billions of engines.
const MAX_SHARDS: u64 = 1 << 16;

impl Encode for Partitioner {
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        match self {
            Partitioner::Grid(grid) => {
                0u8.encode(w)?;
                grid.cell_side().encode(w)?;
                let (ox, oy) = grid.origin();
                ox.encode(w)?;
                oy.encode(w)
            }
            Partitioner::HashByObject => 1u8.encode(w),
        }
    }
}

impl Decode for Partitioner {
    fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => {
                let cell_side = f64::decode(r)?;
                let ox = f64::decode(r)?;
                let oy = f64::decode(r)?;
                if !(cell_side.is_finite() && cell_side > 0.0 && ox.is_finite() && oy.is_finite()) {
                    return Err(DecodeError::Corrupt("invalid grid partitioner geometry"));
                }
                Ok(Partitioner::Grid(GridPartitioner::with_origin(
                    cell_side, ox, oy,
                )))
            }
            1 => Ok(Partitioner::HashByObject),
            _ => Err(DecodeError::Corrupt("unknown partitioner tag")),
        }
    }
}

impl EngineCheckpoint for ShardedEngine {
    fn checkpoint<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        write_header(w, &SHARDED_CHECKPOINT_MAGIC, SHARDED_CHECKPOINT_VERSION)?;
        self.config().encode(w)?;
        self.strategy().encode(w)?;
        self.variant().encode(w)?;
        self.partitioner().encode(w)?;
        self.cluster_database().encode(w)?;
        self.merge_frontier().encode(w)?;
        self.cross_edge_heads().encode(w)?;
        self.cross_edge_tails().encode(w)?;
        self.finalized_records().encode(w)?;
        (self.shard_count() as u64).encode(w)?;
        for engine in self.shard_engines() {
            engine.checkpoint(w)?;
        }
        Ok(())
    }

    fn restore<R: Read + ?Sized>(r: &mut R) -> Result<Self, DecodeError> {
        let version = read_header(r, &SHARDED_CHECKPOINT_MAGIC, SHARDED_CHECKPOINT_VERSION)?;
        let config = GatheringConfig::decode(r)?;
        let strategy = RangeSearchStrategy::decode(r)?;
        let variant = TadVariant::decode(r)?;
        let partitioner = Partitioner::decode(r)?;
        let cdb = if version == 1 {
            crate::model::decode_cluster_database_v1(r)?
        } else {
            ClusterDatabase::decode(r)?
        };
        let merge: Vec<Crowd> = Vec::decode(r)?;
        let cross_in: Vec<ClusterId> = Vec::decode(r)?;
        let cross_out: Vec<ClusterId> = Vec::decode(r)?;
        let finalized: Vec<CrowdRecord> = Vec::decode(r)?;
        let shard_count = u64::decode(r)?;
        if shard_count == 0 || shard_count > MAX_SHARDS {
            return Err(DecodeError::Corrupt("implausible shard count"));
        }
        let mut shards = Vec::with_capacity(shard_count as usize);
        for _ in 0..shard_count {
            shards.push(GatheringEngine::restore(r)?);
        }
        ShardedEngine::from_parts(
            config,
            strategy,
            variant,
            partitioner,
            shards,
            cdb,
            merge,
            cross_in,
            cross_out,
            finalized,
        )
        .map_err(DecodeError::Corrupt)
    }
}

/// Convenience wrapper: checkpoints a sharded engine into a byte vector.
pub fn sharded_checkpoint_to_vec(engine: &ShardedEngine) -> Vec<u8> {
    let mut out = Vec::new();
    engine
        .checkpoint(&mut out)
        .expect("writing to a Vec never fails");
    out
}

/// Convenience wrapper: restores a sharded engine from a byte slice,
/// requiring the slice to be consumed exactly.
///
/// # Errors
///
/// Returns a [`DecodeError`] on malformed input or trailing bytes.
pub fn restore_sharded_from_slice(mut bytes: &[u8]) -> Result<ShardedEngine, DecodeError> {
    let engine = ShardedEngine::restore(&mut bytes)?;
    if !bytes.is_empty() {
        return Err(DecodeError::Corrupt("trailing bytes after checkpoint"));
    }
    Ok(engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpdt_core::{ClusteringParams, CrowdParams, GatheringParams};
    use gpdt_trajectory::{ObjectId, Trajectory, TrajectoryDatabase};

    fn config() -> GatheringConfig {
        GatheringConfig::builder()
            .clustering(ClusteringParams::new(60.0, 3))
            .crowd(CrowdParams::new(3, 3, 120.0))
            .gathering(GatheringParams::new(3, 3))
            .build()
            .unwrap()
    }

    fn drifting_db(ticks: u32) -> TrajectoryDatabase {
        TrajectoryDatabase::from_trajectories((0..5u32).map(|i| {
            Trajectory::from_points(
                ObjectId::new(i),
                (0..ticks)
                    .map(|t| (t, (f64::from(t) * 60.0 + f64::from(i) * 8.0, f64::from(i))))
                    .collect::<Vec<_>>(),
            )
        }))
    }

    fn partitioner() -> Partitioner {
        Partitioner::Grid(GridPartitioner::new(150.0))
    }

    #[test]
    fn partitioner_codec_roundtrips_and_rejects_garbage() {
        for p in [
            Partitioner::Grid(GridPartitioner::with_origin(250.0, -3.0, 7.5)),
            Partitioner::HashByObject,
        ] {
            let bytes = crate::codec::encode_to_vec(&p);
            let back: Partitioner = crate::codec::decode_from_slice(&bytes).unwrap();
            assert_eq!(back, p);
        }
        assert!(matches!(
            crate::codec::decode_from_slice::<Partitioner>(&[9]),
            Err(DecodeError::Corrupt(_))
        ));
        // Grid with a non-finite side is rejected, not a panic.
        let mut bytes = vec![0u8];
        f64::NAN.encode(&mut bytes).unwrap();
        0.0f64.encode(&mut bytes).unwrap();
        0.0f64.encode(&mut bytes).unwrap();
        assert!(matches!(
            crate::codec::decode_from_slice::<Partitioner>(&bytes),
            Err(DecodeError::Corrupt(_))
        ));
    }

    #[test]
    fn empty_sharded_engine_roundtrips() {
        let engine = ShardedEngine::new(config(), 4, partitioner());
        let bytes = sharded_checkpoint_to_vec(&engine);
        let back = restore_sharded_from_slice(&bytes).unwrap();
        assert_eq!(back.shard_count(), 4);
        assert_eq!(back.partitioner(), engine.partitioner());
        assert!(back.time_domain().is_none());
        assert!(back.closed_crowds().is_empty());
    }

    #[test]
    fn mid_stream_sharded_state_roundtrips_and_resumes_identically() {
        let db = drifting_db(14);
        let mut engine = ShardedEngine::new(config(), 3, partitioner());
        engine.ingest_trajectories_until(&db, 7);

        let bytes = sharded_checkpoint_to_vec(&engine);
        let mut restored = restore_sharded_from_slice(&bytes).unwrap();
        assert_eq!(restored.closed_crowds(), engine.closed_crowds());
        assert_eq!(restored.gatherings(), engine.gatherings());
        assert_eq!(
            restored.finalized_records().len(),
            engine.finalized_records().len()
        );

        restored.ingest_trajectories(&db);
        engine.ingest_trajectories(&db);
        assert_eq!(restored.closed_crowds(), engine.closed_crowds());
        assert_eq!(restored.gatherings(), engine.gatherings());
    }

    #[test]
    fn truncations_never_panic() {
        let db = drifting_db(8);
        let mut engine = ShardedEngine::new(config(), 2, partitioner());
        engine.ingest_trajectories(&db);
        let bytes = sharded_checkpoint_to_vec(&engine);
        for cut in (0..bytes.len()).step_by(7) {
            assert!(
                restore_sharded_from_slice(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
        let mut trailing = bytes;
        trailing.push(0);
        assert!(matches!(
            restore_sharded_from_slice(&trailing),
            Err(DecodeError::Corrupt(_))
        ));
    }

    #[test]
    fn shard_count_mismatch_is_rejected() {
        // Re-encode a valid checkpoint with one shard engine chopped off:
        // the declared count no longer matches and decoding must fail
        // cleanly (either truncation or a corruption error).
        let db = drifting_db(8);
        let mut engine = ShardedEngine::new(config(), 2, partitioner());
        engine.ingest_trajectories(&db);

        let mut bytes = Vec::new();
        write_header(
            &mut bytes,
            &SHARDED_CHECKPOINT_MAGIC,
            SHARDED_CHECKPOINT_VERSION,
        )
        .unwrap();
        engine.config().encode(&mut bytes).unwrap();
        engine.strategy().encode(&mut bytes).unwrap();
        engine.variant().encode(&mut bytes).unwrap();
        engine.partitioner().encode(&mut bytes).unwrap();
        engine.cluster_database().encode(&mut bytes).unwrap();
        engine.merge_frontier().encode(&mut bytes).unwrap();
        engine.cross_edge_heads().encode(&mut bytes).unwrap();
        engine.cross_edge_tails().encode(&mut bytes).unwrap();
        engine.finalized_records().encode(&mut bytes).unwrap();
        2u64.encode(&mut bytes).unwrap();
        engine.shard_engines()[0].checkpoint(&mut bytes).unwrap();
        assert!(restore_sharded_from_slice(&bytes).is_err());
    }
}
