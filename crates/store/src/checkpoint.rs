//! Engine checkpoints: serialise a [`GatheringEngine`] so a stream can
//! resume after a crash at any tick boundary.
//!
//! A checkpoint captures the complete discovery state exposed by the engine's
//! accessors — configuration, algorithm choices, the accumulated snapshot
//! cluster database, the finalized crowd records and the Lemma 4 frontier.
//! The streaming clusterer's state is fully derived (its parameters live in
//! the configuration and its cursor is re-aligned to the end of the cluster
//! database before every trajectory ingest), so it is reconstructed rather
//! than stored; its scratch arena is a cache and never affects results.
//!
//! [`restore`](EngineCheckpoint::restore) therefore yields an engine whose
//! observable behaviour — every future [`ingest`] and every accessor — is
//! identical to the checkpointed one's, which is verified by the randomized
//! `checkpoint_restore` equivalence test at the workspace root.
//!
//! [`ingest`]: GatheringEngine::ingest_clusters
//!
//! ```
//! use gpdt_core::{GatheringConfig, GatheringEngine};
//! use gpdt_store::EngineCheckpoint;
//! use gpdt_trajectory::{ObjectId, Trajectory, TrajectoryDatabase};
//!
//! let db = TrajectoryDatabase::from_trajectories((0..5u32).map(|i| {
//!     Trajectory::from_points(
//!         ObjectId::new(i),
//!         (0..8u32).map(|t| (t, (i as f64 * 10.0, t as f64))).collect::<Vec<_>>(),
//!     )
//! }));
//! let config = GatheringConfig::builder()
//!     .clustering(gpdt_core::ClusteringParams::new(60.0, 3))
//!     .crowd(gpdt_core::CrowdParams::new(4, 4, 100.0))
//!     .gathering(gpdt_core::GatheringParams::new(3, 3))
//!     .build()
//!     .unwrap();
//!
//! // Stream half the history, checkpoint, "crash", restore, stream the rest.
//! let mut engine = GatheringEngine::new(config);
//! engine.ingest_trajectories_until(&db, 3);
//! let mut bytes = Vec::new();
//! engine.checkpoint(&mut bytes).unwrap();
//! drop(engine);
//!
//! let mut resumed = GatheringEngine::restore(&mut bytes.as_slice()).unwrap();
//! resumed.ingest_trajectories(&db);
//!
//! let mut uninterrupted = GatheringEngine::new(config);
//! uninterrupted.ingest_trajectories(&db);
//! assert_eq!(resumed.gatherings(), uninterrupted.gatherings());
//! ```

use std::io::{self, Read, Write};

use gpdt_clustering::ClusterDatabase;
use gpdt_core::{
    Crowd, CrowdRecord, Gathering, GatheringConfig, GatheringEngine, RangeSearchStrategy,
    TadVariant,
};

use crate::codec::{read_header, write_header, Decode, DecodeError, Encode};

/// Magic string at the start of every checkpoint.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"GPDTCKP\0";

/// Current checkpoint format version.
///
/// Version history:
///
/// * **1** — row-oriented cluster frames (one header per cluster, points as
///   interleaved x/y pairs).
/// * **2** — columnar cluster-set frames: each tick writes per-cluster
///   lengths followed by flat member-id, x and y columns, mirroring the
///   in-memory shared-arena layout.  v1 checkpoints are still restorable.
pub const CHECKPOINT_VERSION: u16 = 2;

/// Checkpoint/restore hooks for the discovery engine.
///
/// Implemented for [`GatheringEngine`]; callers write to / read from any
/// [`Write`]/[`Read`] — a file for durability, a `Vec<u8>` for tests or for
/// shipping state between processes.
pub trait EngineCheckpoint: Sized {
    /// Serialises the complete discovery state to `w`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors of the writer.
    fn checkpoint<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()>;

    /// Reconstructs an engine from a checkpoint produced by
    /// [`checkpoint`](Self::checkpoint).
    ///
    /// The thread count is reset to the machine default (it is a property of
    /// the host, not of the discovery state); chain
    /// [`GatheringEngine::with_threads`] to override.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the input is truncated, from an
    /// unsupported format version, or internally inconsistent (e.g. a crowd
    /// referencing a cluster missing from the stored database).
    fn restore<R: Read + ?Sized>(r: &mut R) -> Result<Self, DecodeError>;
}

impl EngineCheckpoint for GatheringEngine {
    fn checkpoint<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        write_header(w, &CHECKPOINT_MAGIC, CHECKPOINT_VERSION)?;
        self.config().encode(w)?;
        self.strategy().encode(w)?;
        self.variant().encode(w)?;
        self.cluster_database().encode(w)?;
        self.finalized_records().encode(w)?;
        self.frontier().encode(w)
    }

    fn restore<R: Read + ?Sized>(r: &mut R) -> Result<Self, DecodeError> {
        let version = read_header(r, &CHECKPOINT_MAGIC, CHECKPOINT_VERSION)?;
        let config = GatheringConfig::decode(r)?;
        let strategy = RangeSearchStrategy::decode(r)?;
        let variant = TadVariant::decode(r)?;
        // The cluster database is the only section whose layout changed
        // across versions; everything around it decodes identically.
        let cdb = if version == 1 {
            crate::model::decode_cluster_database_v1(r)?
        } else {
            ClusterDatabase::decode(r)?
        };
        let finalized: Vec<CrowdRecord> = Vec::decode(r)?;
        let frontier: Vec<(Crowd, Vec<Gathering>)> = Vec::decode(r)?;

        // Cross-checks: the pieces decoded fine individually, but a crowd
        // referencing a missing cluster or a frontier entry not ending at the
        // frontier time would make the engine panic later; reject now.
        //
        // Finalized records are never re-resolved by the engine, so under
        // bounded retention their leading ticks may legitimately have been
        // evicted before the checkpoint was written: the containment check
        // for them skips ticks older than the stored database's first tick.
        // Frontier crowds are still extended and detected against the
        // database, so they get the strict check.  An *empty* database with
        // finalized records is always corrupt — eviction keeps at least one
        // tick of any stream that ever finalized anything — so it gets no
        // leniency.
        let domain = cdb.time_domain();
        let end = domain.map(|d| d.end);
        let crowd_ok = |crowd: &Crowd| {
            crowd
                .cluster_ids()
                .iter()
                .all(|&id| cdb.cluster(id).is_some())
        };
        let retained_ok = |crowd: &Crowd| {
            crowd
                .cluster_ids()
                .iter()
                .all(|&id| cdb.cluster(id).is_some() || domain.is_some_and(|d| id.time < d.start))
        };
        for record in &finalized {
            if !retained_ok(&record.crowd)
                || record.gatherings.iter().any(|g| !retained_ok(g.crowd()))
            {
                return Err(DecodeError::Corrupt(
                    "finalized crowd references a cluster missing from the database",
                ));
            }
        }
        for (crowd, gatherings) in &frontier {
            if !crowd_ok(crowd) || gatherings.iter().any(|g| !crowd_ok(g.crowd())) {
                return Err(DecodeError::Corrupt(
                    "frontier crowd references a cluster missing from the database",
                ));
            }
            if Some(crowd.end_time()) != end {
                return Err(DecodeError::Corrupt(
                    "frontier crowd does not end at the last ingested timestamp",
                ));
            }
        }
        Ok(GatheringEngine::from_parts(
            config, strategy, variant, cdb, finalized, frontier,
        ))
    }
}

/// Convenience wrapper: checkpoints an engine into a fresh byte vector.
pub fn checkpoint_to_vec(engine: &GatheringEngine) -> Vec<u8> {
    let _span = gpdt_obs::span!("store.checkpoint");
    let mut out = Vec::new();
    engine
        .checkpoint(&mut out)
        .expect("writing to a Vec never fails");
    out
}

/// Convenience wrapper: restores an engine from a byte slice, requiring the
/// slice to be consumed exactly.
///
/// # Errors
///
/// Returns a [`DecodeError`] on malformed input or trailing bytes.
pub fn restore_from_slice(mut bytes: &[u8]) -> Result<GatheringEngine, DecodeError> {
    let _span = gpdt_obs::span!("store.restore");
    let engine = GatheringEngine::restore(&mut bytes)?;
    if !bytes.is_empty() {
        return Err(DecodeError::Corrupt("trailing bytes after checkpoint"));
    }
    Ok(engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpdt_core::{ClusteringParams, CrowdParams, GatheringParams};
    use gpdt_trajectory::{ObjectId, Trajectory, TrajectoryDatabase};

    fn config() -> GatheringConfig {
        GatheringConfig::builder()
            .clustering(ClusteringParams::new(60.0, 3))
            .crowd(CrowdParams::new(3, 4, 100.0))
            .gathering(GatheringParams::new(3, 3))
            .build()
            .unwrap()
    }

    fn lingering_db(objects: u32, duration: u32) -> TrajectoryDatabase {
        TrajectoryDatabase::from_trajectories((0..objects).map(|i| {
            Trajectory::from_points(
                ObjectId::new(i),
                (0..duration)
                    .map(|t| (t, (i as f64 * 10.0, t as f64 * 2.0)))
                    .collect::<Vec<_>>(),
            )
        }))
    }

    #[test]
    fn empty_engine_roundtrips() {
        let engine = GatheringEngine::new(config())
            .with_strategy(RangeSearchStrategy::RTreeDside)
            .with_variant(TadVariant::Tad);
        let bytes = checkpoint_to_vec(&engine);
        let back = restore_from_slice(&bytes).unwrap();
        assert_eq!(back.config(), engine.config());
        assert_eq!(back.strategy(), RangeSearchStrategy::RTreeDside);
        assert_eq!(back.variant(), TadVariant::Tad);
        assert!(back.time_domain().is_none());
        assert!(back.closed_crowds().is_empty());
    }

    #[test]
    fn mid_stream_state_roundtrips_exactly() {
        let db = lingering_db(5, 12);
        let mut engine = GatheringEngine::new(config());
        engine.ingest_trajectories_until(&db, 7);

        let bytes = checkpoint_to_vec(&engine);
        let back = restore_from_slice(&bytes).unwrap();
        assert_eq!(back.time_domain(), engine.time_domain());
        assert_eq!(
            back.finalized_records().len(),
            engine.finalized_records().len()
        );
        assert_eq!(back.frontier().len(), engine.frontier().len());
        assert_eq!(back.closed_crowds(), engine.closed_crowds());
        assert_eq!(back.gatherings(), engine.gatherings());
    }

    #[test]
    fn truncations_never_panic() {
        let db = lingering_db(4, 6);
        let mut engine = GatheringEngine::new(config());
        engine.ingest_trajectories(&db);
        let bytes = checkpoint_to_vec(&engine);
        for cut in 0..bytes.len() {
            assert!(
                restore_from_slice(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn evicted_history_is_tolerated_but_empty_database_is_not() {
        use gpdt_core::RetentionPolicy;

        // Legitimate bounded-retention state: finalized records whose
        // leading ticks were evicted still restore.  Gather-scatter cycles
        // make crowds finalize so eviction has something to reclaim.
        let db = TrajectoryDatabase::from_trajectories((0..5u32).map(|i| {
            Trajectory::from_points(
                ObjectId::new(i),
                (0..24u32)
                    .map(|t| {
                        let x = if t % 8 < 5 {
                            f64::from(i) * 10.0 + f64::from(t / 8) * 500.0
                        } else {
                            f64::from(i) * 50_000.0 + f64::from(t)
                        };
                        (t, (x, 0.0))
                    })
                    .collect::<Vec<_>>(),
            )
        }));
        let mut engine = GatheringEngine::new(config()).with_retention(RetentionPolicy::Bounded);
        for t in 0..24 {
            engine.ingest_trajectories_until(&db, t);
        }
        engine.evict_retired_clusters();
        assert!(!engine.finalized_records().is_empty());
        let first_retained = engine.cluster_database().time_domain().unwrap().start;
        assert!(
            engine.finalized_records()[0].crowd.start_time() < first_retained,
            "the scenario must actually evict finalized history"
        );
        let bytes = checkpoint_to_vec(&engine);
        let back = restore_from_slice(&bytes).unwrap();
        assert_eq!(back.closed_crowds(), engine.closed_crowds());

        // Corrupt state: an empty cluster database alongside finalized
        // records (no eviction schedule can produce this) is rejected.
        let mut forged = Vec::new();
        write_header(&mut forged, &CHECKPOINT_MAGIC, CHECKPOINT_VERSION).unwrap();
        engine.config().encode(&mut forged).unwrap();
        engine.strategy().encode(&mut forged).unwrap();
        engine.variant().encode(&mut forged).unwrap();
        ClusterDatabase::new().encode(&mut forged).unwrap();
        engine.finalized_records().encode(&mut forged).unwrap();
        let empty_frontier: Vec<(Crowd, Vec<Gathering>)> = Vec::new();
        empty_frontier.encode(&mut forged).unwrap();
        assert!(matches!(
            restore_from_slice(&forged),
            Err(DecodeError::Corrupt(_))
        ));
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let engine = GatheringEngine::new(config());
        let bytes = checkpoint_to_vec(&engine);

        let mut wrong_magic = bytes.clone();
        wrong_magic[0] ^= 0xFF;
        assert!(matches!(
            restore_from_slice(&wrong_magic),
            Err(DecodeError::BadMagic { .. })
        ));

        let mut wrong_version = bytes.clone();
        // The version is the u16 right after the 8-byte magic.
        wrong_version[8] = 0xFF;
        wrong_version[9] = 0xFF;
        assert!(matches!(
            restore_from_slice(&wrong_version),
            Err(DecodeError::UnsupportedVersion { .. })
        ));

        let mut trailing = bytes;
        trailing.push(0);
        assert!(matches!(
            restore_from_slice(&trailing),
            Err(DecodeError::Corrupt(_))
        ));
    }

    #[test]
    fn inconsistent_state_is_rejected() {
        let db = lingering_db(5, 8);
        let mut engine = GatheringEngine::new(config());
        engine.ingest_trajectories(&db);

        // Hand-craft a checkpoint whose frontier crowd ends too early: encode
        // the same engine but with a frontier shifted out of its database.
        let mut bytes = Vec::new();
        write_header(&mut bytes, &CHECKPOINT_MAGIC, CHECKPOINT_VERSION).unwrap();
        engine.config().encode(&mut bytes).unwrap();
        engine.strategy().encode(&mut bytes).unwrap();
        engine.variant().encode(&mut bytes).unwrap();
        engine.cluster_database().encode(&mut bytes).unwrap();
        engine.finalized_records().encode(&mut bytes).unwrap();
        let bogus_frontier: Vec<(Crowd, Vec<Gathering>)> = vec![(
            Crowd::new(vec![gpdt_clustering::ClusterId::new(0, 0)]),
            Vec::new(),
        )];
        bogus_frontier.encode(&mut bytes).unwrap();
        assert!(matches!(
            restore_from_slice(&bytes),
            Err(DecodeError::Corrupt(_))
        ));
    }

    #[test]
    fn gathering_referencing_a_missing_cluster_is_rejected() {
        let db = lingering_db(5, 8);
        let mut engine = GatheringEngine::new(config());
        engine.ingest_trajectories(&db);
        assert!(!engine.frontier().is_empty());

        // Re-encode the engine with a frontier gathering whose crowd points
        // at a cluster index that does not exist: the record's own crowd is
        // fine, so only the per-gathering cross-check can catch it.
        let mut bytes = Vec::new();
        write_header(&mut bytes, &CHECKPOINT_MAGIC, CHECKPOINT_VERSION).unwrap();
        engine.config().encode(&mut bytes).unwrap();
        engine.strategy().encode(&mut bytes).unwrap();
        engine.variant().encode(&mut bytes).unwrap();
        engine.cluster_database().encode(&mut bytes).unwrap();
        engine.finalized_records().encode(&mut bytes).unwrap();
        let (crowd, _) = engine.frontier()[0].clone();
        let bogus_gathering = Gathering::from_parts(
            Crowd::new(vec![gpdt_clustering::ClusterId::new(crowd.end_time(), 999)]),
            Vec::new(),
        );
        let frontier: Vec<(Crowd, Vec<Gathering>)> = vec![(crowd, vec![bogus_gathering])];
        frontier.encode(&mut bytes).unwrap();
        assert!(matches!(
            restore_from_slice(&bytes),
            Err(DecodeError::Corrupt(_))
        ));
    }

    #[test]
    fn v1_checkpoints_still_restore() {
        let db = lingering_db(5, 12);
        let mut engine = GatheringEngine::new(config());
        engine.ingest_trajectories_until(&db, 7);
        assert!(!engine.cluster_database().is_empty());

        // Forge the same state in the v1 layout: header version 1 with the
        // row-oriented per-cluster frames.
        let mut v1 = Vec::new();
        write_header(&mut v1, &CHECKPOINT_MAGIC, 1).unwrap();
        engine.config().encode(&mut v1).unwrap();
        engine.strategy().encode(&mut v1).unwrap();
        engine.variant().encode(&mut v1).unwrap();
        crate::model::encode_cluster_database_v1(engine.cluster_database(), &mut v1).unwrap();
        engine.finalized_records().encode(&mut v1).unwrap();
        engine.frontier().encode(&mut v1).unwrap();

        let back = restore_from_slice(&v1).unwrap();
        assert_eq!(back.time_domain(), engine.time_domain());
        assert_eq!(back.closed_crowds(), engine.closed_crowds());
        assert_eq!(back.gatherings(), engine.gatherings());
        assert_eq!(
            checkpoint_to_vec(&back),
            checkpoint_to_vec(&engine),
            "state restored from v1 must re-checkpoint identically to native v2"
        );

        // Truncated v1 inputs fail cleanly through the legacy decoder too.
        for cut in 0..v1.len() {
            assert!(
                restore_from_slice(&v1[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }
}
