//! The monitoring façade: one supervised ingestion thread feeding a
//! [`GatheringEngine`] and a [`PatternStore`], while any number of caller
//! threads run store queries concurrently.
//!
//! Following the `par.rs` idiom of `gpdt-core`, the service is built from
//! `std::thread::scope` and `std::sync::mpsc` channels — no runtime, no
//! external dependencies.  [`MonitorService::run`] owns the engine for the
//! duration of a scope: an ingest worker drains a command channel
//! (cluster batches, flush barriers, checkpoint requests) and appends every
//! newly finalized crowd record to the store behind an `RwLock`, while the
//! caller's closure — and any threads it spawns — issues queries through the
//! shared [`ServiceHandle`].  When the closure returns, the channel closes,
//! the worker drains and exits, and the engine and store are handed back.
//!
//! Because the worker is the only writer and queries take the read lock,
//! queries never block each other; a query racing an ingest sees either the
//! store before or after that batch's records, never a torn state.  Call
//! [`ServiceHandle::flush`] first for deterministic results.
//!
//! # Supervision
//!
//! The worker classifies every store fault through
//! [`StoreError::is_transient`] and reacts accordingly:
//!
//! * **Transient faults** (interrupted writes, racing I/O) are retried in
//!   place with bounded exponential backoff and seeded jitter, governed by
//!   the [`SupervisorPolicy`].  Successful retries are invisible except for
//!   the [`ServiceStats::retries`] counter.
//! * **Exhausted retries** flip the service into *degraded mode*: ingest is
//!   queued (up to [`SupervisorPolicy::max_queued_batches`]), queries and
//!   checkpoints are rejected with [`ServiceError::Degraded`], and the next
//!   batch or an explicit [`ServiceHandle::try_recover`] re-probes the
//!   store.  On recovery the queue drains in order, so the engine and store
//!   end up exactly where an undisturbed run would.
//! * **Fatal faults** (invalid records, a store that diverges from the
//!   engine's finalized feed) halt durable storage for the session while
//!   discovery continues — retrying could never succeed.
//! * **Worker panics** during ingestion are caught: the engine is restored
//!   from an in-memory recovery checkpoint (refreshed every
//!   [`SupervisorPolicy::checkpoint_interval`] batches), the batches since
//!   are replayed, and the offending batch is retried once.  The output is
//!   byte-identical to a run without the panic.
//!
//! A store *ahead* of its engine (the engine restarted from an older
//! checkpoint) is resumed by verification: each re-finalized record is
//! compared against the stored record at the same index and skipped when
//! they match, so recovery never duplicates records; a mismatch halts
//! durable storage (that store is not this engine's history).
//!
//! ```
//! use gpdt_clustering::ClusterDatabase;
//! use gpdt_core::{GatheringConfig, GatheringEngine};
//! use gpdt_store::{MonitorService, PatternStore};
//! use gpdt_trajectory::{ObjectId, TimeInterval, Trajectory, TrajectoryDatabase};
//!
//! // Five objects linger together for six ticks, then scatter — the crowd
//! // they form is finalized (and stored) once the scattered ticks arrive.
//! let db = TrajectoryDatabase::from_trajectories((0..5u32).map(|i| {
//!     Trajectory::from_points(
//!         ObjectId::new(i),
//!         (0..10u32)
//!             .map(|t| {
//!                 let x = if t < 6 { f64::from(i) * 10.0 } else { f64::from(i) * 10_000.0 };
//!                 (t, (x, t as f64))
//!             })
//!             .collect::<Vec<_>>(),
//!     )
//! }));
//! let config = GatheringConfig::builder()
//!     .clustering(gpdt_core::ClusteringParams::new(60.0, 3))
//!     .crowd(gpdt_core::CrowdParams::new(4, 4, 100.0))
//!     .gathering(gpdt_core::GatheringParams::new(3, 3))
//!     .build()
//!     .unwrap();
//!
//! let dir = std::env::temp_dir().join(format!("gpdt-doc-service-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let store = PatternStore::open(&dir).unwrap();
//! let engine = GatheringEngine::new(config);
//!
//! let outcome = MonitorService::run(engine, store, |handle| {
//!     // Feed the live stream one tick at a time...
//!     for t in 0..10u32 {
//!         let batch = ClusterDatabase::build_interval(
//!             &db,
//!             &config.clustering,
//!             TimeInterval::new(t, t),
//!         );
//!         handle.ingest(batch);
//!     }
//!     // ...and query the durable history at any point.
//!     handle.flush();
//!     handle.top_k(3).unwrap().len()
//! });
//! assert!(outcome.errors.is_empty());
//! assert_eq!(outcome.value, 1);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::mpsc::{self, Receiver, Sender, SyncSender};
use std::sync::{Mutex, RwLock};
use std::time::Duration;

use gpdt_clustering::ClusterDatabase;
use gpdt_core::{CrowdRecord, GatheringEngine};
use gpdt_geo::Mbr;
use gpdt_shard::ShardedEngine;
use gpdt_trajectory::{ObjectId, TimeInterval, Timestamp};

use crate::codec::DecodeError;
use crate::store::{GatheringHit, PatternRecord, PatternStore, RecordId, StoreError};

/// Commands processed by the ingest worker, in FIFO order.
enum Command {
    /// Ingest one cluster batch and store the newly finalized records.
    Clusters(ClusterDatabase),
    /// Barrier: acknowledged only after every earlier command finished.
    Flush(SyncSender<()>),
    /// Serialise the engine state (after flushing the store so checkpoint
    /// and store stay in lockstep).
    Checkpoint(SyncSender<Result<Vec<u8>, ServiceError>>),
    /// Snapshot the service/engine counters.
    Stats(SyncSender<ServiceStats>),
    /// Probe a degraded store and drain the ingest queue on success.
    TryRecover(SyncSender<bool>),
    /// Dump the flight recorder as JSON, on demand (the in-band variant of
    /// the automatic dumps on panic and degraded entry).
    FlightRecorder(SyncSender<String>),
}

/// The engine kinds [`MonitorService::run`] can drive: the single
/// [`GatheringEngine`] and the partitioned
/// [`ShardedEngine`].  The service only needs the
/// streaming surface they share — expected next tick, batch ingestion, the
/// append-only finalized-record feed, the database those records resolve
/// against, checkpoint serialisation, restore (for panic recovery) and a
/// load snapshot.
pub trait MonitoredEngine: Send {
    /// The tick the next batch must start at (`None` accepts any start).
    fn expected_next_tick(&self) -> Option<Timestamp>;
    /// Ingests one cluster batch (adjacency already validated).
    fn ingest_batch(&mut self, batch: ClusterDatabase);
    /// The append-only finalized-record feed mirrored into the store.
    fn finalized_feed(&self) -> &[CrowdRecord];
    /// The cluster database the finalized records resolve against.
    fn resolve_database(&self) -> &ClusterDatabase;
    /// Serialises a checkpoint of the complete discovery state.
    fn checkpoint_bytes(&self) -> Vec<u8>;
    /// Rebuilds an engine from [`MonitoredEngine::checkpoint_bytes`] output,
    /// carrying over `self`'s host-side knobs (threads, retention) that a
    /// checkpoint deliberately does not pin.
    ///
    /// # Errors
    ///
    /// Returns the codec's [`DecodeError`] for malformed bytes.
    fn restore_bytes(&self, bytes: &[u8]) -> Result<Self, DecodeError>
    where
        Self: Sized;
    /// Engine-side load numbers for [`ServiceStats`].
    fn load(&self) -> EngineLoad;
}

impl MonitoredEngine for GatheringEngine {
    fn expected_next_tick(&self) -> Option<Timestamp> {
        self.time_domain().map(|d| d.end + 1)
    }

    fn ingest_batch(&mut self, batch: ClusterDatabase) {
        self.ingest_clusters(batch);
    }

    fn finalized_feed(&self) -> &[CrowdRecord] {
        self.finalized_records()
    }

    fn resolve_database(&self) -> &ClusterDatabase {
        self.cluster_database()
    }

    fn checkpoint_bytes(&self) -> Vec<u8> {
        crate::checkpoint::checkpoint_to_vec(self)
    }

    fn restore_bytes(&self, bytes: &[u8]) -> Result<Self, DecodeError> {
        crate::checkpoint::restore_from_slice(bytes).map(|e| {
            e.with_threads(self.threads())
                .with_retention(self.retention())
        })
    }

    fn load(&self) -> EngineLoad {
        let stats = self.stats();
        EngineLoad {
            open_sequences: stats.open_sequences,
            resident_ticks: stats.resident_ticks,
            per_shard_clusters: Vec::new(),
            per_shard_restarts: Vec::new(),
        }
    }
}

impl MonitoredEngine for ShardedEngine {
    fn expected_next_tick(&self) -> Option<Timestamp> {
        self.time_domain().map(|d| d.end + 1)
    }

    fn ingest_batch(&mut self, batch: ClusterDatabase) {
        self.ingest_clusters(batch);
    }

    fn finalized_feed(&self) -> &[CrowdRecord] {
        self.finalized_records()
    }

    fn resolve_database(&self) -> &ClusterDatabase {
        self.cluster_database()
    }

    fn checkpoint_bytes(&self) -> Vec<u8> {
        crate::sharded::sharded_checkpoint_to_vec(self)
    }

    fn restore_bytes(&self, bytes: &[u8]) -> Result<Self, DecodeError> {
        crate::sharded::restore_sharded_from_slice(bytes).map(|e| {
            e.with_threads(self.threads())
                .with_retention(self.retention())
                .with_supervision(self.supervision())
        })
    }

    fn load(&self) -> EngineLoad {
        let stats = self.stats();
        EngineLoad {
            open_sequences: stats
                .per_shard
                .iter()
                .map(|s| s.open_sequences)
                .sum::<usize>()
                + stats.open_merge_paths,
            resident_ticks: stats
                .per_shard
                .iter()
                .map(|s| s.resident_ticks)
                .max()
                .unwrap_or(0),
            per_shard_clusters: stats
                .per_shard
                .iter()
                .map(|s| s.resident_clusters)
                .collect(),
            per_shard_restarts: stats.per_shard.iter().map(|s| s.restarts).collect(),
        }
    }
}

/// Engine-side load numbers surfaced through [`ServiceStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineLoad {
    /// Open crowd candidates (for a sharded engine: across all shards plus
    /// the merge sweep).
    pub open_sequences: usize,
    /// Resident cluster-database ticks (for a sharded engine: the maximum
    /// over the shards).
    pub resident_ticks: usize,
    /// Per-shard resident cluster counts; empty for a single engine.
    pub per_shard_clusters: Vec<usize>,
    /// Per-shard worker restart counts (see
    /// [`gpdt_shard::ShardLoad::restarts`]); empty for a single engine.
    pub per_shard_restarts: Vec<u64>,
}

/// A consistent snapshot of the service's ingestion counters and the
/// engine's load, taken by the ingest worker between commands (so it never
/// races a batch).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Cluster batches applied so far.
    pub batches_ingested: u64,
    /// Batches rejected (non-adjacent start, or twice-panicking).
    pub batches_rejected: u64,
    /// Ticks applied so far.
    pub ticks_ingested: u64,
    /// Records the engine has finalized.
    pub finalized_records: usize,
    /// Records durably stored (trails `finalized_records` only transiently,
    /// or when durable storage halted).
    pub stored_records: usize,
    /// Store appends retried after a transient fault.
    pub retries: u64,
    /// Ingestion panics recovered from the in-memory checkpoint.
    pub panics_recovered: u64,
    /// If degraded, the batch count when degradation began.
    pub degraded_since: Option<u64>,
    /// Batches queued while degraded.
    pub queued_batches: usize,
    /// Engine-side load.
    pub engine: EngineLoad,
    /// A point-in-time copy of the process-wide metrics registry (stage
    /// latencies, VFS counters, supervision counts), merged with the
    /// service- and engine-level numbers above under the shared
    /// [`gpdt_obs::MetricSource`] vocabulary.  Empty when `GPDT_OBS=off`.
    pub metrics: gpdt_obs::Snapshot,
}

impl gpdt_obs::MetricSource for ServiceStats {
    fn metric_prefix(&self) -> &'static str {
        "service"
    }
    fn metric_values(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("batches_ingested", self.batches_ingested),
            ("batches_rejected", self.batches_rejected),
            ("ticks_ingested", self.ticks_ingested),
            ("finalized_records", self.finalized_records as u64),
            ("stored_records", self.stored_records as u64),
            ("retries", self.retries),
            ("panics_recovered", self.panics_recovered),
            ("degraded", u64::from(self.degraded_since.is_some())),
            ("queued_batches", self.queued_batches as u64),
        ]
    }
}

impl gpdt_obs::MetricSource for EngineLoad {
    fn metric_prefix(&self) -> &'static str {
        "engine_load"
    }
    fn metric_values(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("open_sequences", self.open_sequences as u64),
            ("resident_ticks", self.resident_ticks as u64),
            (
                "resident_clusters",
                self.per_shard_clusters.iter().map(|&c| c as u64).sum(),
            ),
            ("restarts", self.per_shard_restarts.iter().sum()),
        ]
    }
}

/// Typed rejections surfaced by [`ServiceHandle`] queries and checkpoints.
#[derive(Debug)]
pub enum ServiceError {
    /// Durable storage is degraded: transient faults exhausted the retry
    /// budget.  Ingest is queued and queries are rejected until a batch or
    /// [`ServiceHandle::try_recover`] brings the store back.
    Degraded {
        /// The batch count when degradation began.
        since_batch: u64,
        /// The fault that exhausted the retry budget.
        reason: String,
    },
    /// The request cannot be served in the current state (halted or lagging
    /// durable storage); retrying without intervention will not help.
    Refused(String),
    /// A store fault surfaced directly (e.g. the fsync of a checkpoint).
    Store(StoreError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Degraded {
                since_batch,
                reason,
            } => write!(f, "service degraded since batch {since_batch}: {reason}"),
            ServiceError::Refused(reason) => write!(f, "{reason}"),
            ServiceError::Store(err) => write!(f, "store error: {err}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Store(err) => Some(err),
            _ => None,
        }
    }
}

impl From<StoreError> for ServiceError {
    fn from(err: StoreError) -> Self {
        ServiceError::Store(err)
    }
}

/// How the ingest worker reacts to faults: retry budget and backoff curve
/// for transient store errors, the recovery-checkpoint cadence for panic
/// recovery, and the ingest-queue bound for degraded mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisorPolicy {
    /// Transient-fault retries before entering degraded mode.
    pub max_retries: u32,
    /// First retry delay; attempt `n` waits up to `base * 2^(n-1)`.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff delay.
    pub max_backoff: Duration,
    /// Seed for the backoff jitter (each delay is drawn from 50–100% of the
    /// exponential ceiling, so colliding retries de-synchronise).
    pub jitter_seed: u64,
    /// Batches between refreshes of the in-memory recovery checkpoint used
    /// for panic recovery (smaller = cheaper replay, more serialisation).
    pub checkpoint_interval: u64,
    /// Most batches queued while degraded; beyond this, batches are dropped
    /// (and reported) rather than exhausting memory.
    pub max_queued_batches: usize,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        SupervisorPolicy {
            max_retries: 4,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
            jitter_seed: 0x9E37_79B9_7F4A_7C15,
            checkpoint_interval: 16,
            max_queued_batches: 4096,
        }
    }
}

impl SupervisorPolicy {
    /// Builds a policy from the environment: `GPDT_BACKOFF_BASE_MS`,
    /// `GPDT_BACKOFF_MAX_MS` and `GPDT_BACKOFF_RETRIES` override the
    /// defaults (unset or unparsable values keep them).
    pub fn from_env() -> Self {
        fn parse(key: &str) -> Option<u64> {
            std::env::var(key).ok().and_then(|v| v.trim().parse().ok())
        }
        let mut policy = SupervisorPolicy::default();
        if let Some(ms) = parse("GPDT_BACKOFF_BASE_MS") {
            policy.base_backoff = Duration::from_millis(ms);
        }
        if let Some(ms) = parse("GPDT_BACKOFF_MAX_MS") {
            policy.max_backoff = Duration::from_millis(ms);
        }
        if let Some(n) = parse("GPDT_BACKOFF_RETRIES") {
            policy.max_retries = n.min(u64::from(u32::MAX)) as u32;
        }
        policy
    }
}

/// Everything [`MonitorService::run`] hands back: the engine and store (for
/// continued use, checkpointing or clean shutdown) plus the closure's result
/// and any ingestion errors.
#[derive(Debug)]
pub struct MonitorOutcome<T, E = GatheringEngine> {
    /// The engine, caught up with every ingested batch.
    pub engine: E,
    /// The store, holding every finalized record.
    pub store: PatternStore,
    /// The closure's return value.
    pub value: T,
    /// Ingestion-side errors (rejected batches, store faults, recovered
    /// panics), in occurrence order.  Ingestion continues past errors; an
    /// empty list means every batch was applied and stored undisturbed.
    pub errors: Vec<String>,
}

/// The concurrent monitoring service.  See the [module docs](self).
#[derive(Debug)]
pub struct MonitorService;

impl MonitorService {
    /// Runs the service for the duration of `f` with the default
    /// [`SupervisorPolicy`].
    ///
    /// The engine must be the producer of the store's existing records: a
    /// freshly restored checkpoint next to its store (even an *older*
    /// checkpoint — re-finalized records are verified against the stored
    /// ones and skipped), or a fresh engine next to an empty store.  A store
    /// whose records diverge from what the engine finalizes is detected and
    /// excluded from further appends (reported via
    /// [`MonitorOutcome::errors`]); such an archive is an end state for
    /// queries, not a resumable companion.
    ///
    /// Sharded mode is the same call with a
    /// [`ShardedEngine`]: the engine fans every
    /// batch out across its shards and merges, the worker mirrors the merged
    /// finalized records into the store, and queries aggregate over the
    /// merged history exactly as in single-engine mode.
    ///
    /// # Panics
    ///
    /// Panics if the ingest worker itself panicked (panics raised *inside*
    /// batch ingestion are caught and recovered; malformed batches and store
    /// faults are reported via [`MonitorOutcome::errors`]).
    pub fn run<E, T, F>(engine: E, store: PatternStore, f: F) -> MonitorOutcome<T, E>
    where
        E: MonitoredEngine,
        F: FnOnce(&ServiceHandle<'_>) -> T,
    {
        Self::run_with(engine, store, SupervisorPolicy::default(), f)
    }

    /// [`MonitorService::run`] with an explicit [`SupervisorPolicy`].
    pub fn run_with<E, T, F>(
        engine: E,
        store: PatternStore,
        policy: SupervisorPolicy,
        f: F,
    ) -> MonitorOutcome<T, E>
    where
        E: MonitoredEngine,
        F: FnOnce(&ServiceHandle<'_>) -> T,
    {
        // Bring up the live telemetry plane (sampler, SLO watchdog, and the
        // /metrics + /health + /flightrec endpoint) if the environment asks
        // for it; a no-op otherwise, and idempotent across nested services.
        gpdt_obs::telemetry_from_env();
        let store = RwLock::new(store);
        let errors = Mutex::new(Vec::new());
        let degraded = RwLock::new(None);
        let (tx, rx) = mpsc::channel::<Command>();

        let (value, engine) = std::thread::scope(|scope| {
            let store_ref = &store;
            let errors_ref = &errors;
            let degraded_ref = &degraded;
            let worker = scope.spawn(move || {
                IngestWorker::new(engine, store_ref, errors_ref, degraded_ref, policy).run(rx)
            });
            let handle = ServiceHandle {
                tx: &tx,
                store: &store,
                degraded: &degraded,
            };
            let value = f(&handle);
            drop(tx); // closes the channel; the worker drains and exits
            let engine = worker
                .join()
                .expect("the ingest worker catches in-batch panics and never panics itself");
            (value, engine)
        });

        MonitorOutcome {
            engine,
            store: store.into_inner().expect("no thread holds the store lock"),
            value,
            errors: errors.into_inner().expect("no thread holds the error lock"),
        }
    }
}

/// Why one store-sync pass could not complete.
enum SyncFailure {
    /// Fatal: durable storage halted for the session (already reported).
    Halted,
    /// Transient: the cursor stopped at the failed record; retry later.
    Transient(StoreError),
}

/// The ingest worker: drains commands, feeds the engine (recovering from
/// panics), mirrors newly finalized records into the store (retrying
/// transient faults, degrading when they persist).
struct IngestWorker<'a, E: MonitoredEngine> {
    engine: E,
    store: &'a RwLock<PatternStore>,
    errors: &'a Mutex<Vec<String>>,
    degraded: &'a RwLock<Option<(u64, String)>>,
    policy: SupervisorPolicy,
    /// Jitter rng state (xorshift64; never zero).
    rng: u64,
    /// Engine-finalized records accounted for in the store, as a prefix:
    /// either appended by us or verified equal to a pre-existing record.
    accounted: usize,
    /// `false` once a fatal fault halted durable storage for the session.
    storing: bool,
    /// Batches queued while degraded, drained in order on recovery.
    queue: VecDeque<ClusterDatabase>,
    /// In-memory engine checkpoint panic recovery restores from.
    recovery_ckpt: Vec<u8>,
    /// Batches ingested since `recovery_ckpt` was taken, for replay.
    replay: Vec<ClusterDatabase>,
    batches_ingested: u64,
    batches_rejected: u64,
    ticks_ingested: u64,
    retries: u64,
    panics_recovered: u64,
    /// Last tick applied, stamped onto flight-recorder events.
    last_tick: Option<Timestamp>,
}

impl<'a, E: MonitoredEngine> IngestWorker<'a, E> {
    fn new(
        engine: E,
        store: &'a RwLock<PatternStore>,
        errors: &'a Mutex<Vec<String>>,
        degraded: &'a RwLock<Option<(u64, String)>>,
        policy: SupervisorPolicy,
    ) -> Self {
        let recovery_ckpt = engine.checkpoint_bytes();
        let rng = policy.jitter_seed | 1;
        IngestWorker {
            engine,
            store,
            errors,
            degraded,
            policy,
            rng,
            accounted: 0,
            storing: true,
            queue: VecDeque::new(),
            recovery_ckpt,
            replay: Vec::new(),
            batches_ingested: 0,
            batches_rejected: 0,
            ticks_ingested: 0,
            retries: 0,
            panics_recovered: 0,
            last_tick: None,
        }
    }

    fn run(mut self, rx: Receiver<Command>) -> E {
        // Startup reconciliation: the store may lag the engine (a fresh
        // store next to a restored checkpoint — backfill) or lead it (the
        // engine restored from an *older* checkpoint — the overlap will be
        // verified record by record as the engine re-finalizes it).
        let stored = self.store_len();
        let finalized = self.engine.finalized_feed().len();
        self.accounted = stored.min(finalized);
        if stored < finalized {
            if let Err(reason) = self.catch_up() {
                self.enter_degraded(reason);
            }
        }

        while let Ok(command) = rx.recv() {
            match command {
                Command::Clusters(batch) => {
                    if self.is_degraded() {
                        // Each incoming batch re-probes the store once (no
                        // backoff — the channel must keep draining).
                        if self.probe_recovery(false) {
                            self.apply_batch(batch);
                        } else {
                            self.enqueue(batch);
                        }
                    } else {
                        self.apply_batch(batch);
                    }
                }
                Command::Flush(ack) => {
                    let _ = ack.send(());
                }
                Command::Stats(reply) => {
                    let _ = reply.send(self.snapshot());
                }
                Command::TryRecover(reply) => {
                    let _ = reply.send(self.probe_recovery(true));
                }
                Command::Checkpoint(reply) => {
                    let _ = reply.send(self.handle_checkpoint());
                }
                Command::FlightRecorder(reply) => {
                    let _ = reply.send(gpdt_obs::flight().to_json());
                }
            }
        }
        self.engine
    }

    fn report(&self, message: String) {
        self.errors
            .lock()
            .expect("error list lock is never poisoned")
            .push(message);
    }

    fn store_len(&self) -> usize {
        self.store
            .read()
            .expect("store lock is never poisoned")
            .len()
    }

    fn is_degraded(&self) -> bool {
        self.degraded
            .read()
            .expect("degraded flag lock is never poisoned")
            .is_some()
    }

    fn enter_degraded(&mut self, reason: String) {
        self.report(format!(
            "durable storage degraded after batch {}: {reason}; queueing ingest until recovery",
            self.batches_ingested
        ));
        if gpdt_obs::enabled() {
            gpdt_obs::counter!("service.degraded.entries").inc();
            gpdt_obs::record_event(
                "service.degraded.enter",
                self.last_tick,
                format!("after batch {}: {reason}", self.batches_ingested),
            );
            // Degraded entry is a post-mortem moment: persist the event
            // trail now, in case the process never recovers.
            gpdt_obs::flight().dump();
            gpdt_obs::health::set_degraded(self.batches_ingested, &reason);
        }
        *self
            .degraded
            .write()
            .expect("degraded flag lock is never poisoned") = Some((self.batches_ingested, reason));
    }

    fn exit_degraded(&mut self) {
        if gpdt_obs::enabled() && self.is_degraded() {
            gpdt_obs::record_event(
                "service.degraded.exit",
                self.last_tick,
                format!("recovered at batch {}", self.batches_ingested),
            );
            gpdt_obs::health::set_recovered();
        }
        *self
            .degraded
            .write()
            .expect("degraded flag lock is never poisoned") = None;
    }

    fn enqueue(&mut self, batch: ClusterDatabase) {
        if self.queue.len() >= self.policy.max_queued_batches {
            self.report(format!(
                "degraded ingest queue full ({} batches); dropping incoming batch",
                self.queue.len()
            ));
            self.batches_rejected += 1;
        } else {
            self.queue.push_back(batch);
        }
    }

    /// While degraded: probe the store (with the full retry budget when
    /// `patient`), and on success drain the queue in order.  Returns whether
    /// the service left degraded mode with storage working.
    fn probe_recovery(&mut self, patient: bool) -> bool {
        if !self.is_degraded() {
            return self.storing;
        }
        let outcome = if patient {
            self.catch_up()
        } else {
            match self.sync_store() {
                Ok(()) => Ok(()),
                Err(SyncFailure::Halted) => Ok(()),
                Err(SyncFailure::Transient(err)) => Err(err.to_string()),
            }
        };
        match outcome {
            Ok(()) => {
                self.exit_degraded();
                let drained = self.queue.len();
                if self.storing {
                    self.report(format!(
                        "durable storage recovered; draining {drained} queued batches"
                    ));
                } else {
                    self.report(format!(
                        "durable storage halted permanently; draining {drained} queued \
                         batches into the engine only"
                    ));
                }
                while let Some(batch) = self.queue.pop_front() {
                    self.apply_batch(batch);
                    if self.is_degraded() {
                        break; // the store failed again; keep the rest queued
                    }
                }
                self.storing && !self.is_degraded()
            }
            Err(_) => false,
        }
    }

    /// The normal-path ingestion of one batch: adjacency check, panic-safe
    /// engine ingest, then the store sync (entering degraded mode if the
    /// retry budget runs out).
    fn apply_batch(&mut self, batch: ClusterDatabase) {
        let Some(batch_domain) = batch.time_domain() else {
            return; // empty batches are no-ops
        };
        // `ingest_clusters` treats a non-adjacent batch as a programmer
        // error and panics; a long-running service rejects it instead and
        // keeps serving.
        if let Some(expected) = self.engine.expected_next_tick() {
            if batch_domain.start != expected {
                self.report(format!(
                    "rejected batch starting at t={} (expected t={expected})",
                    batch_domain.start
                ));
                self.batches_rejected += 1;
                return;
            }
        }
        if !self.ingest_recovering(&batch) {
            return;
        }
        self.batches_ingested += 1;
        self.ticks_ingested += u64::from(batch_domain.len());
        self.last_tick = Some(batch_domain.end);
        if gpdt_obs::enabled() {
            // `service.batches` feeds the watchdog's ingest-stall rule; the
            // health surface tracks tick progress and per-shard restarts.
            gpdt_obs::counter!("service.batches").inc();
            gpdt_obs::health::note_ingest(self.last_tick, &self.engine.load().per_shard_restarts);
        }
        self.replay.push(batch);
        if self.replay.len() as u64 >= self.policy.checkpoint_interval.max(1) {
            self.refresh_recovery_ckpt();
        }
        if self.storing {
            if let Err(reason) = self.catch_up() {
                self.enter_degraded(reason);
            }
        }
    }

    /// Feeds one batch to the engine, recovering from a panic by restoring
    /// the in-memory checkpoint, replaying the batches since and retrying
    /// the batch once.  Returns whether the batch was applied.
    fn ingest_recovering(&mut self, batch: &ClusterDatabase) -> bool {
        let first =
            std::panic::catch_unwind(AssertUnwindSafe(|| self.engine.ingest_batch(batch.clone())));
        if first.is_ok() {
            return true;
        }
        if gpdt_obs::enabled() {
            gpdt_obs::counter!("service.worker_panics").inc();
            gpdt_obs::record_event(
                "service.worker.panic",
                batch.time_domain().map(|d| d.start),
                "ingestion panicked; restoring the in-memory checkpoint",
            );
        }
        self.restore_and_replay();
        let retry =
            std::panic::catch_unwind(AssertUnwindSafe(|| self.engine.ingest_batch(batch.clone())));
        match retry {
            Ok(()) => {
                self.panics_recovered += 1;
                if gpdt_obs::enabled() {
                    gpdt_obs::counter!("service.panics_recovered").inc();
                    gpdt_obs::record_event(
                        "service.panic.recovered",
                        batch.time_domain().map(|d| d.start),
                        "checkpoint restore + replay + retry succeeded",
                    );
                }
                self.report(format!(
                    "ingestion panicked on the batch starting at t={:?}; recovered from the \
                     in-memory checkpoint and retried successfully",
                    batch.time_domain().map(|d| d.start)
                ));
                true
            }
            Err(_) => {
                // The batch panics deterministically; restore once more so
                // the half-mutated engine never leaks into later batches.
                self.restore_and_replay();
                self.report(format!(
                    "ingestion panicked twice on the batch starting at t={:?}; batch rejected",
                    batch.time_domain().map(|d| d.start)
                ));
                self.batches_rejected += 1;
                false
            }
        }
    }

    fn restore_and_replay(&mut self) {
        self.engine = self
            .engine
            .restore_bytes(&self.recovery_ckpt)
            .expect("the in-memory recovery checkpoint always decodes");
        for past in &self.replay {
            self.engine.ingest_batch(past.clone());
        }
    }

    fn refresh_recovery_ckpt(&mut self) {
        self.recovery_ckpt = self.engine.checkpoint_bytes();
        self.replay.clear();
    }

    /// Brings the store in sync with the engine's finalized feed, retrying
    /// transient faults with backoff.  `Err` carries the reason once the
    /// retry budget is exhausted; fatal faults halt storage and return
    /// `Ok` (there is nothing left to retry).
    fn catch_up(&mut self) -> Result<(), String> {
        let mut attempt: u32 = 0;
        loop {
            match self.sync_store() {
                Ok(()) => return Ok(()),
                Err(SyncFailure::Halted) => return Ok(()),
                Err(SyncFailure::Transient(err)) => {
                    if attempt >= self.policy.max_retries {
                        return Err(err.to_string());
                    }
                    attempt += 1;
                    self.retries += 1;
                    self.note_retry("catch_up", attempt, &err.to_string());
                    std::thread::sleep(self.backoff_delay(attempt));
                }
            }
        }
    }

    fn backoff_delay(&mut self, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(1).min(20);
        let ceiling = self
            .policy
            .base_backoff
            .saturating_mul(1u32 << exp)
            .min(self.policy.max_backoff);
        let nanos = ceiling.as_nanos().min(u128::from(u64::MAX)) as u64;
        // Jitter: a seeded draw from 50–100% of the exponential ceiling.
        let jittered = nanos / 2 + self.next_rand() % (nanos / 2 + 1);
        if gpdt_obs::enabled() {
            gpdt_obs::record_event(
                "service.backoff",
                self.last_tick,
                format!("attempt {attempt}: sleeping {jittered}ns"),
            );
        }
        Duration::from_nanos(jittered)
    }

    /// Journals one transient-fault retry (counter + flight event).
    fn note_retry(&self, site: &str, attempt: u32, error: &str) {
        if gpdt_obs::enabled() {
            gpdt_obs::counter!("service.retries").inc();
            gpdt_obs::record_event(
                "service.retry",
                self.last_tick,
                format!("{site} attempt {attempt}: {error}"),
            );
        }
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// One pass over the engine's unaccounted finalized records: verify
    /// records the store already holds (the engine is replaying past its
    /// last checkpoint), append the rest.
    ///
    /// The store must always hold a *prefix* of the engine's finalized
    /// records — crash recovery backfills `finalized[store.len()..]`, so
    /// skipping a failed record would leave a permanent hole and duplicate
    /// its successors.  On a transient fault the cursor therefore stops at
    /// the failed record (a failed append rolls the log back, so that is
    /// safe).  A fatal fault (invalid record, divergent store) halts
    /// durable storage entirely — discovery keeps running — instead of
    /// livelocking.
    fn sync_store(&mut self) -> Result<(), SyncFailure> {
        let records = self.engine.finalized_feed();
        if self.accounted >= records.len() {
            return Ok(());
        }
        let cdb = self.engine.resolve_database();
        let mut store = self.store.write().expect("store lock is never poisoned");
        let mut halted: Option<String> = None;
        let mut transient: Option<StoreError> = None;
        for record in &records[self.accounted..] {
            // Under bounded retention a record can only outlive its clusters
            // if the store lagged across an eviction (a halted or
            // chronically failing store); converting it would panic, so halt
            // explicitly.
            let resolvable = record
                .crowd
                .cluster_ids()
                .iter()
                .chain(
                    record
                        .gatherings
                        .iter()
                        .flat_map(|g| g.crowd().cluster_ids()),
                )
                .all(|&id| cdb.cluster(id).is_some());
            if !resolvable {
                halted = Some(format!(
                    "finalized record #{} references evicted clusters (store lagged across a \
                     retention eviction); halting durable storage, discovery continues",
                    self.accounted
                ));
                break;
            }
            if self.accounted < store.len() {
                // The store is ahead: the engine is re-finalizing records a
                // previous run already persisted.  Verify instead of append.
                let fresh = PatternRecord::from_crowd_record(record, cdb);
                if store.records()[self.accounted] == fresh {
                    self.accounted += 1;
                    continue;
                }
                halted = Some(format!(
                    "stored record #{} diverges from what this engine finalizes — not this \
                     engine's history; halting durable storage, discovery continues",
                    self.accounted
                ));
                break;
            }
            match store.append_crowd_record(record, cdb) {
                Ok(_) => self.accounted += 1,
                Err(err) if err.is_transient() => {
                    transient = Some(err);
                    break;
                }
                Err(err) => {
                    halted = Some(format!(
                        "finalized record #{} was refused by the store ({err}); halting \
                         durable storage, discovery continues",
                        self.accounted
                    ));
                    break;
                }
            }
        }
        drop(store);
        if let Some(message) = halted {
            self.report(message);
            self.storing = false;
            return Err(SyncFailure::Halted);
        }
        if let Some(err) = transient {
            return Err(SyncFailure::Transient(err));
        }
        Ok(())
    }

    fn handle_checkpoint(&mut self) -> Result<Vec<u8>, ServiceError> {
        if let Some((since_batch, reason)) = self
            .degraded
            .read()
            .expect("degraded flag lock is never poisoned")
            .clone()
        {
            return Err(ServiceError::Degraded {
                since_batch,
                reason,
            });
        }
        // The advertised contract is a *consistent* (checkpoint, store)
        // pair: retry any backfill a transient error left pending, and
        // refuse the checkpoint if the store still lags the engine.
        if self.storing {
            if let Err(reason) = self.catch_up() {
                self.enter_degraded(reason.clone());
                let (since_batch, _) = self
                    .degraded
                    .read()
                    .expect("degraded flag lock is never poisoned")
                    .clone()
                    .expect("degraded mode was just entered");
                return Err(ServiceError::Degraded {
                    since_batch,
                    reason,
                });
            }
        }
        if !self.storing {
            return Err(ServiceError::Refused(
                "durable storage is halted (see the service error list); checkpoint refused"
                    .to_string(),
            ));
        }
        if self.accounted < self.engine.finalized_feed().len() {
            return Err(ServiceError::Refused(
                "store is lagging the engine's finalized records; checkpoint refused".to_string(),
            ));
        }
        let mut attempt: u32 = 0;
        loop {
            let result = self
                .store
                .write()
                .expect("store lock is never poisoned")
                .sync();
            match result {
                Ok(()) => break,
                Err(err) if err.is_transient() && attempt < self.policy.max_retries => {
                    attempt += 1;
                    self.retries += 1;
                    self.note_retry("checkpoint_sync", attempt, &err.to_string());
                    let delay = self.backoff_delay(attempt);
                    std::thread::sleep(delay);
                }
                Err(err) => return Err(ServiceError::Store(err)),
            }
        }
        let bytes = self.engine.checkpoint_bytes();
        // A successful checkpoint is also the freshest possible panic
        // recovery point.
        self.recovery_ckpt = bytes.clone();
        self.replay.clear();
        Ok(bytes)
    }

    fn snapshot(&self) -> ServiceStats {
        let mut stats = ServiceStats {
            batches_ingested: self.batches_ingested,
            batches_rejected: self.batches_rejected,
            ticks_ingested: self.ticks_ingested,
            finalized_records: self.engine.finalized_feed().len(),
            stored_records: self.store_len(),
            retries: self.retries,
            panics_recovered: self.panics_recovered,
            degraded_since: self
                .degraded
                .read()
                .expect("degraded flag lock is never poisoned")
                .as_ref()
                .map(|(since, _)| *since),
            queued_batches: self.queue.len(),
            engine: self.engine.load(),
            metrics: gpdt_obs::Snapshot::default(),
        };
        if gpdt_obs::enabled() {
            // One snapshot vocabulary: the process-wide registry, plus the
            // service counters and engine load merged in as `prefix.name`
            // gauges.
            let mut metrics = gpdt_obs::registry().snapshot();
            metrics.merge_source(&stats);
            metrics.merge_source(&stats.engine);
            stats.metrics = metrics;
        }
        stats
    }
}

/// The caller-side handle of a running [`MonitorService`].
///
/// Cheap to share (`&ServiceHandle` is `Send + Sync`): spawn as many query
/// threads as needed inside the service closure.
#[derive(Debug)]
pub struct ServiceHandle<'a> {
    tx: &'a Sender<Command>,
    store: &'a RwLock<PatternStore>,
    degraded: &'a RwLock<Option<(u64, String)>>,
}

impl ServiceHandle<'_> {
    /// Enqueues one cluster batch for ingestion and returns immediately.
    ///
    /// Batches are applied in submission order.  A batch that does not start
    /// right after the engine's current time domain is rejected (reported in
    /// [`MonitorOutcome::errors`]); empty batches are ignored.  While the
    /// service is degraded, batches are queued and drained on recovery.
    pub fn ingest(&self, batch: ClusterDatabase) {
        self.tx
            .send(Command::Clusters(batch))
            .expect("the ingest worker outlives every handle");
    }

    /// Blocks until every previously enqueued batch has been ingested and
    /// its finalized records stored.  Queries after a flush are
    /// deterministic.
    pub fn flush(&self) {
        let (ack, wait) = mpsc::sync_channel(0);
        self.tx
            .send(Command::Flush(ack))
            .expect("the ingest worker outlives every handle");
        wait.recv().expect("the ingest worker answers every flush");
    }

    /// Flushes, fsyncs the store and serialises the engine state — a
    /// consistent (checkpoint, store) pair for crash recovery.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Degraded`] while the store is degraded,
    /// [`ServiceError::Refused`] when durable storage halted or lags the
    /// engine, [`ServiceError::Store`] for a direct store fault; the engine
    /// serialisation itself cannot fail.
    pub fn checkpoint(&self) -> Result<Vec<u8>, ServiceError> {
        let (reply, wait) = mpsc::sync_channel(0);
        self.tx
            .send(Command::Checkpoint(reply))
            .expect("the ingest worker outlives every handle");
        wait.recv()
            .expect("the ingest worker answers every checkpoint request")
    }

    /// Probes a degraded store with the full retry budget and drains the
    /// ingest queue on success; returns whether the service is healthy
    /// (never was degraded, or recovered) with durable storage working.
    pub fn try_recover(&self) -> bool {
        let (reply, wait) = mpsc::sync_channel(0);
        self.tx
            .send(Command::TryRecover(reply))
            .expect("the ingest worker outlives every handle");
        wait.recv()
            .expect("the ingest worker answers every recovery probe")
    }

    /// Number of records currently stored.
    pub fn stored(&self) -> usize {
        self.read().len()
    }

    /// A consistent snapshot of the service's ingestion counters and the
    /// engine's load (taken by the ingest worker, so it reflects every batch
    /// enqueued before this call once they have been applied — call
    /// [`ServiceHandle::flush`] first for a quiescent snapshot).
    pub fn stats(&self) -> ServiceStats {
        let (reply, wait) = mpsc::sync_channel(0);
        self.tx
            .send(Command::Stats(reply))
            .expect("the ingest worker outlives every handle");
        wait.recv()
            .expect("the ingest worker answers every stats request")
    }

    /// The flight recorder's JSON dump, on demand — the same document the
    /// service writes on panic or degraded entry, but taken by the ingest
    /// worker between commands, so it reflects every batch enqueued before
    /// this call once they have been applied.  Returns an empty event list
    /// when `GPDT_OBS=off`.
    pub fn flight_recorder(&self) -> String {
        let (reply, wait) = mpsc::sync_channel(0);
        self.tx
            .send(Command::FlightRecorder(reply))
            .expect("the ingest worker outlives every handle");
        wait.recv()
            .expect("the ingest worker answers every flight-recorder request")
    }

    /// The region × time-window query (see
    /// [`PatternStore::query_gatherings`]); results are owned so the store
    /// lock is released before returning.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Degraded`] while the store is degraded (the durable
    /// history is behind the stream; answers would be stale).
    pub fn query_gatherings(
        &self,
        region: &Mbr,
        window: TimeInterval,
    ) -> Result<Vec<GatheringHit>, ServiceError> {
        self.guard()?;
        Ok(self.read().query_gatherings(region, window))
    }

    /// Record ids of crowds active during `window`
    /// (see [`PatternStore::crowds_in_window`]).
    ///
    /// # Errors
    ///
    /// [`ServiceError::Degraded`] while the store is degraded.
    pub fn crowds_in_window(&self, window: TimeInterval) -> Result<Vec<RecordId>, ServiceError> {
        self.guard()?;
        Ok(self.read().crowds_in_window(window))
    }

    /// The participation history of one object
    /// (see [`PatternStore::object_history`]).
    ///
    /// # Errors
    ///
    /// [`ServiceError::Degraded`] while the store is degraded.
    pub fn object_history(&self, object: ObjectId) -> Result<Vec<GatheringHit>, ServiceError> {
        self.guard()?;
        Ok(self.read().object_history(object))
    }

    /// The `k` most-attended stored gatherings
    /// (see [`PatternStore::top_k_gatherings`]).
    ///
    /// # Errors
    ///
    /// [`ServiceError::Degraded`] while the store is degraded.
    pub fn top_k(&self, k: usize) -> Result<Vec<GatheringHit>, ServiceError> {
        self.guard()?;
        Ok(self.read().top_k_gatherings(k))
    }

    fn guard(&self) -> Result<(), ServiceError> {
        if let Some((since_batch, reason)) = self
            .degraded
            .read()
            .expect("degraded flag lock is never poisoned")
            .clone()
        {
            return Err(ServiceError::Degraded {
                since_batch,
                reason,
            });
        }
        Ok(())
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, PatternStore> {
        self.store.read().expect("store lock is never poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreOptions;
    use crate::vfs::{FaultPlan, FaultVfs};
    use gpdt_core::{
        ClusteringParams, CrowdParams, GatheringConfig, GatheringParams, GatheringPipeline,
    };
    use gpdt_trajectory::{ObjectId, Trajectory, TrajectoryDatabase};
    use std::path::PathBuf;
    use std::sync::Arc;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gpdt-service-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn config() -> GatheringConfig {
        GatheringConfig::builder()
            .clustering(ClusteringParams::new(60.0, 3))
            .crowd(CrowdParams::new(3, 3, 100.0))
            .gathering(GatheringParams::new(3, 3))
            .build()
            .unwrap()
    }

    /// A fast-retry policy so fault tests do not sleep for real.
    fn snappy_policy() -> SupervisorPolicy {
        SupervisorPolicy {
            max_retries: 2,
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_micros(500),
            jitter_seed: 7,
            checkpoint_interval: 4,
            max_queued_batches: 64,
        }
    }

    /// Two separate lingering blobs, one after the other, so at least two
    /// crowds finalize at different times.
    fn scene() -> TrajectoryDatabase {
        let mut trajectories = Vec::new();
        for i in 0..4u32 {
            trajectories.push(Trajectory::from_points(
                ObjectId::new(i),
                (0..8u32)
                    .map(|t| (t, (i as f64 * 10.0, t as f64)))
                    .collect::<Vec<_>>(),
            ));
        }
        for i in 10..14u32 {
            trajectories.push(Trajectory::from_points(
                ObjectId::new(i),
                (10..20u32)
                    .map(|t| (t, (5_000.0 + f64::from(i) * 10.0, t as f64)))
                    .collect::<Vec<_>>(),
            ));
        }
        TrajectoryDatabase::from_trajectories(trajectories)
    }

    fn tick_batches(db: &TrajectoryDatabase) -> Vec<ClusterDatabase> {
        let domain = db.time_domain().unwrap();
        domain
            .iter()
            .map(|t| {
                ClusterDatabase::build_interval(db, &config().clustering, TimeInterval::new(t, t))
            })
            .collect()
    }

    #[test]
    fn service_matches_offline_run_and_serves_queries() {
        let db = scene();
        let reference = GatheringPipeline::new(config()).discover(&db);
        assert!(reference.crowd_count() >= 2);

        let dir = temp_dir("match");
        let store = PatternStore::open(&dir).unwrap();
        let engine = GatheringEngine::new(config());
        let outcome = MonitorService::run(engine, store, |handle| {
            for batch in tick_batches(&db) {
                handle.ingest(batch);
            }
            handle.flush();
            (
                handle.stored(),
                handle.top_k(10).unwrap(),
                handle.object_history(ObjectId::new(0)).unwrap(),
            )
        });
        assert!(outcome.errors.is_empty(), "{:?}", outcome.errors);

        // The engine matches an offline batch run...
        assert_eq!(outcome.engine.closed_crowds(), reference.crowds);
        assert_eq!(outcome.engine.gatherings(), reference.gatherings);

        // ...and the store holds every *finalized* record (the final
        // frontier crowd only finalizes once later data arrives).
        let (stored, top, history) = outcome.value;
        assert_eq!(stored, outcome.engine.finalized_records().len());
        assert!(!top.is_empty());
        assert!(!history.is_empty());

        // Reopening the store finds the same records.
        drop(outcome.store);
        let reopened = PatternStore::open(&dir).unwrap();
        assert_eq!(reopened.len(), stored);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_queries_run_during_ingestion() {
        let db = scene();
        let dir = temp_dir("concurrent");
        let store = PatternStore::open(&dir).unwrap();
        let engine = GatheringEngine::new(config());
        let outcome = MonitorService::run(engine, store, |handle| {
            std::thread::scope(|scope| {
                let ingester = scope.spawn(|| {
                    for batch in tick_batches(&db) {
                        handle.ingest(batch);
                    }
                    handle.flush();
                });
                // Hammer queries from two threads while ingestion runs; the
                // count is monotone because the store is append-only.
                let mut watchers = Vec::new();
                for _ in 0..2 {
                    watchers.push(scope.spawn(|| {
                        let mut last = 0;
                        for _ in 0..200 {
                            let now = handle.stored();
                            assert!(now >= last, "store count went backwards");
                            last = now;
                            let _ = handle.top_k(3).unwrap();
                            let _ = handle.crowds_in_window(TimeInterval::new(0, 100)).unwrap();
                        }
                    }));
                }
                ingester.join().unwrap();
                for watcher in watchers {
                    watcher.join().unwrap();
                }
            });
            handle.stored()
        });
        assert!(outcome.errors.is_empty(), "{:?}", outcome.errors);
        assert_eq!(outcome.value, outcome.engine.finalized_records().len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn non_adjacent_batches_are_rejected_not_fatal() {
        let db = scene();
        let batches = tick_batches(&db);
        let dir = temp_dir("reject");
        let store = PatternStore::open(&dir).unwrap();
        let engine = GatheringEngine::new(config());
        let outcome = MonitorService::run(engine, store, |handle| {
            handle.ingest(batches[0].clone());
            handle.ingest(batches[5].clone()); // gap: rejected
            handle.ingest(batches[1].clone()); // still accepted
            handle.flush();
        });
        assert_eq!(outcome.errors.len(), 1);
        assert!(
            outcome.errors[0].contains("rejected batch"),
            "{:?}",
            outcome.errors
        );
        assert_eq!(outcome.engine.time_domain(), Some(TimeInterval::new(0, 1)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_through_the_service_is_restorable() {
        let db = scene();
        let batches = tick_batches(&db);
        let dir = temp_dir("checkpoint");
        let store = PatternStore::open(&dir).unwrap();
        let engine = GatheringEngine::new(config());
        let outcome = MonitorService::run(engine, store, |handle| {
            for batch in batches.iter().take(12).cloned() {
                handle.ingest(batch);
            }
            handle.checkpoint().unwrap()
        });
        assert!(outcome.errors.is_empty());

        // Restore mid-stream, feed the rest, compare with the uninterrupted
        // engine continuing from the same point.
        let mut restored = crate::checkpoint::restore_from_slice(&outcome.value).unwrap();
        let mut uninterrupted = outcome.engine;
        for batch in batches.iter().skip(12) {
            restored.ingest_clusters(batch.clone());
            uninterrupted.ingest_clusters(batch.clone());
        }
        assert_eq!(restored.closed_crowds(), uninterrupted.closed_crowds());
        assert_eq!(restored.gatherings(), uninterrupted.gatherings());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_snapshot_tracks_ingestion_and_engine_load() {
        let db = scene();
        let batches = tick_batches(&db);
        let total_ticks = batches.len() as u64;
        let dir = temp_dir("stats");
        let store = PatternStore::open(&dir).unwrap();
        let engine = GatheringEngine::new(config());
        let outcome = MonitorService::run(engine, store, |handle| {
            for batch in batches.iter().cloned() {
                handle.ingest(batch);
            }
            handle.flush();
            let mid = handle.stats();
            handle.ingest(batches[3].clone()); // non-adjacent: rejected
            handle.flush();
            (mid, handle.stats())
        });
        let (mid, end) = outcome.value;
        assert_eq!(mid.batches_ingested, total_ticks);
        assert_eq!(mid.batches_rejected, 0);
        assert_eq!(mid.ticks_ingested, total_ticks);
        assert_eq!(
            mid.finalized_records,
            outcome.engine.finalized_records().len()
        );
        assert_eq!(mid.stored_records, mid.finalized_records);
        assert_eq!(mid.retries, 0);
        assert_eq!(mid.panics_recovered, 0);
        assert_eq!(mid.degraded_since, None);
        assert_eq!(mid.queued_batches, 0);
        assert!(mid.engine.resident_ticks > 0);
        assert!(mid.engine.per_shard_clusters.is_empty());
        assert!(mid.engine.per_shard_restarts.is_empty());
        assert_eq!(end.batches_rejected, 1);
        assert_eq!(end.ticks_ingested, total_ticks);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sharded_mode_matches_single_mode_and_serves_queries() {
        use gpdt_shard::{GridPartitioner, Partitioner};

        let db = scene();
        let batches = tick_batches(&db);

        // Reference: single-engine service over the same stream.
        let single_dir = temp_dir("sharded-ref");
        let single = MonitorService::run(
            GatheringEngine::new(config()),
            PatternStore::open(&single_dir).unwrap(),
            |handle| {
                for batch in batches.iter().cloned() {
                    handle.ingest(batch);
                }
                handle.flush();
                handle.stored()
            },
        );
        assert!(single.errors.is_empty(), "{:?}", single.errors);

        let dir = temp_dir("sharded");
        let store = PatternStore::open(&dir).unwrap();
        let engine =
            ShardedEngine::new(config(), 3, Partitioner::Grid(GridPartitioner::new(300.0)));
        let outcome = MonitorService::run(engine, store, |handle| {
            for batch in batches.iter().cloned() {
                handle.ingest(batch);
            }
            handle.flush();
            let stats = handle.stats();
            (handle.stored(), handle.top_k(10).unwrap(), stats)
        });
        assert!(outcome.errors.is_empty(), "{:?}", outcome.errors);
        let (stored, top, stats) = outcome.value;

        // The sharded engine's canonical output and durable feed match the
        // single engine's.
        assert_eq!(
            outcome.engine.closed_crowds(),
            single.engine.closed_crowds()
        );
        assert_eq!(outcome.engine.gatherings(), single.engine.gatherings());
        assert_eq!(stored, single.value);
        assert!(!top.is_empty());
        assert_eq!(stats.engine.per_shard_clusters.len(), 3);
        assert_eq!(stats.engine.per_shard_restarts, vec![0, 0, 0]);
        assert_eq!(stats.stored_records, stored);
        assert_eq!(stats.finalized_records, stored);

        // The checkpoint taken through the service restores to an engine
        // that continues identically.
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&single_dir).unwrap();
    }

    #[test]
    fn sharded_checkpoint_through_the_service_is_restorable() {
        use gpdt_shard::{GridPartitioner, Partitioner};

        let db = scene();
        let batches = tick_batches(&db);
        let dir = temp_dir("sharded-checkpoint");
        let store = PatternStore::open(&dir).unwrap();
        let engine =
            ShardedEngine::new(config(), 2, Partitioner::Grid(GridPartitioner::new(300.0)));
        let outcome = MonitorService::run(engine, store, |handle| {
            for batch in batches.iter().take(12).cloned() {
                handle.ingest(batch);
            }
            handle.checkpoint().unwrap()
        });
        assert!(outcome.errors.is_empty(), "{:?}", outcome.errors);

        let mut restored = crate::sharded::restore_sharded_from_slice(&outcome.value).unwrap();
        let mut uninterrupted = outcome.engine;
        for batch in batches.iter().skip(12) {
            restored.ingest_clusters(batch.clone());
            uninterrupted.ingest_clusters(batch.clone());
        }
        assert_eq!(restored.closed_crowds(), uninterrupted.closed_crowds());
        assert_eq!(restored.gatherings(), uninterrupted.gatherings());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restored_engine_backfills_a_lagging_store() {
        let db = scene();
        let mut engine = GatheringEngine::new(config());
        engine.ingest_trajectories(&db);
        let finalized = engine.finalized_records().len();
        assert!(finalized >= 1);

        // Fresh (empty) store next to an engine with history: the worker
        // catches the store up before processing any command.
        let dir = temp_dir("backfill");
        let store = PatternStore::open(&dir).unwrap();
        let outcome = MonitorService::run(engine, store, |handle| {
            handle.flush();
            handle.stored()
        });
        assert!(outcome.errors.is_empty());
        assert_eq!(outcome.value, finalized);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Like [`scene`] but with four consecutive blobs, so several crowds
    /// finalize (and are appended) while the stream is still running.
    fn long_scene() -> TrajectoryDatabase {
        let mut trajectories = Vec::new();
        for blob in 0..4u32 {
            let start = blob * 10;
            for i in 0..4u32 {
                trajectories.push(Trajectory::from_points(
                    ObjectId::new(blob * 100 + i),
                    (start..start + 8)
                        .map(|t| {
                            (
                                t,
                                (f64::from(blob) * 5_000.0 + f64::from(i) * 10.0, t as f64),
                            )
                        })
                        .collect::<Vec<_>>(),
                ));
            }
        }
        TrajectoryDatabase::from_trajectories(trajectories)
    }

    #[test]
    fn transient_store_faults_are_retried_invisibly() {
        let db = long_scene();
        let reference = GatheringPipeline::new(config()).discover(&db);
        assert!(reference.crowd_count() >= 4);

        // Tiny segments force a rotation (flush + sync + create, all VFS
        // traffic) on nearly every append, so the one-in-two transient
        // write and fsync faults actually bite.
        let vfs = FaultVfs::new(0xBEEF);
        let store = PatternStore::open_at(
            Arc::new(vfs.clone()),
            "/svc",
            StoreOptions {
                max_segment_bytes: 64,
                ..StoreOptions::default()
            },
        )
        .unwrap();
        vfs.set_plan(FaultPlan {
            transient_write_one_in: Some(2),
            transient_sync_one_in: Some(2),
            ..FaultPlan::default()
        });
        let policy = SupervisorPolicy {
            max_retries: 10,
            ..snappy_policy()
        };
        let outcome =
            MonitorService::run_with(GatheringEngine::new(config()), store, policy, |handle| {
                let domain = db.time_domain().unwrap();
                for t in domain.iter() {
                    handle.ingest(ClusterDatabase::build_interval(
                        &db,
                        &config().clustering,
                        TimeInterval::new(t, t),
                    ));
                }
                handle.flush();
                (handle.stored(), handle.stats())
            });
        let (stored, stats) = outcome.value;
        assert!(outcome.errors.is_empty(), "{:?}", outcome.errors);
        assert_eq!(outcome.engine.closed_crowds(), reference.crowds);
        assert_eq!(stored, outcome.engine.finalized_records().len());
        assert!(stored >= 3, "several crowds must have been stored mid-run");
        assert!(
            stats.retries > 0,
            "the fault schedule must have forced at least one retry"
        );
        assert_eq!(stats.degraded_since, None);
    }

    #[test]
    fn persistent_faults_degrade_and_recovery_drains_the_queue() {
        let db = scene();
        let batches = tick_batches(&db);
        let reference = GatheringPipeline::new(config()).discover(&db);

        let vfs = FaultVfs::new(0xD1CE);
        let store = PatternStore::open_at(
            Arc::new(vfs.clone()),
            "/svc",
            StoreOptions {
                max_segment_bytes: 256,
                ..StoreOptions::default()
            },
        )
        .unwrap();
        let outcome = MonitorService::run_with(
            GatheringEngine::new(config()),
            store,
            snappy_policy(),
            |handle| {
                // The first batches land healthily — before any crowd
                // finalizes (the first blob's crowd closes at t=8).
                for batch in batches.iter().take(6).cloned() {
                    handle.ingest(batch);
                }
                handle.flush();
                assert_eq!(handle.stats().degraded_since, None);

                // Now every write fails: the first crowd's record cannot be
                // stored, the retry budget runs out, the service degrades.
                vfs.set_plan(FaultPlan {
                    transient_write_one_in: Some(1),
                    ..FaultPlan::default()
                });
                for batch in batches.iter().skip(6).cloned() {
                    handle.ingest(batch);
                }
                handle.flush();
                let degraded = handle.stats();
                assert!(degraded.degraded_since.is_some(), "{degraded:?}");
                assert!(degraded.queued_batches > 0, "{degraded:?}");
                assert!(matches!(
                    handle.top_k(3),
                    Err(ServiceError::Degraded { .. })
                ));
                assert!(matches!(
                    handle.checkpoint(),
                    Err(ServiceError::Degraded { .. })
                ));
                assert!(!handle.try_recover(), "the store is still failing");

                // The weather clears: recovery drains the queue in order.
                vfs.clear_faults();
                assert!(handle.try_recover());
                handle.flush();
                let healthy = handle.stats();
                assert_eq!(healthy.degraded_since, None);
                assert_eq!(healthy.queued_batches, 0);
                (handle.stored(), healthy)
            },
        );
        let (stored, healthy) = outcome.value;
        // The degradation and recovery were reported...
        assert!(
            outcome.errors.iter().any(|e| e.contains("degraded")),
            "{:?}",
            outcome.errors
        );
        assert!(
            outcome.errors.iter().any(|e| e.contains("recovered")),
            "{:?}",
            outcome.errors
        );
        // ...and the end state is exactly what an undisturbed run produces.
        assert_eq!(outcome.engine.closed_crowds(), reference.crowds);
        assert_eq!(outcome.engine.gatherings(), reference.gatherings);
        assert_eq!(stored, outcome.engine.finalized_records().len());
        assert!(healthy.retries > 0);
    }

    /// A [`MonitoredEngine`] wrapper that panics on the `n`-th ingested
    /// batch — once; the wrapper restored from a checkpoint is benign.
    struct PanicOnNth {
        inner: GatheringEngine,
        panic_at: Option<u64>,
        seen: u64,
    }

    impl MonitoredEngine for PanicOnNth {
        fn expected_next_tick(&self) -> Option<Timestamp> {
            self.inner.expected_next_tick()
        }
        fn ingest_batch(&mut self, batch: ClusterDatabase) {
            self.seen += 1;
            if self.panic_at == Some(self.seen) {
                self.panic_at = None;
                panic!("injected ingest panic");
            }
            self.inner.ingest_batch(batch);
        }
        fn finalized_feed(&self) -> &[CrowdRecord] {
            self.inner.finalized_feed()
        }
        fn resolve_database(&self) -> &ClusterDatabase {
            self.inner.resolve_database()
        }
        fn checkpoint_bytes(&self) -> Vec<u8> {
            self.inner.checkpoint_bytes()
        }
        fn restore_bytes(&self, bytes: &[u8]) -> Result<Self, DecodeError> {
            Ok(PanicOnNth {
                inner: self.inner.restore_bytes(bytes)?,
                panic_at: None,
                seen: self.seen,
            })
        }
        fn load(&self) -> EngineLoad {
            self.inner.load()
        }
    }

    #[test]
    fn ingest_panic_is_recovered_with_identical_output() {
        let db = scene();
        let reference = GatheringPipeline::new(config()).discover(&db);

        let dir = temp_dir("panic");
        let store = PatternStore::open(&dir).unwrap();
        let engine = PanicOnNth {
            inner: GatheringEngine::new(config()),
            panic_at: Some(13),
            seen: 0,
        };
        let outcome = MonitorService::run_with(engine, store, snappy_policy(), |handle| {
            for batch in tick_batches(&db) {
                handle.ingest(batch);
            }
            handle.flush();
            (handle.stored(), handle.stats())
        });
        let (stored, stats) = outcome.value;
        assert_eq!(stats.panics_recovered, 1);
        assert_eq!(outcome.errors.len(), 1, "{:?}", outcome.errors);
        assert!(
            outcome.errors[0].contains("recovered"),
            "{:?}",
            outcome.errors
        );
        // The panic (and the restore + replay it forced) left no trace in
        // the discovery output or the durable history.
        assert_eq!(outcome.engine.inner.closed_crowds(), reference.crowds);
        assert_eq!(outcome.engine.inner.gatherings(), reference.gatherings);
        assert_eq!(stored, outcome.engine.inner.finalized_records().len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn store_ahead_of_engine_is_verified_and_skipped() {
        let db = scene();
        let batches = tick_batches(&db);
        let dir = temp_dir("ahead");

        // First run: checkpoint early, then keep streaming, so the store
        // ends up holding records the checkpointed engine has not finalized.
        let first = MonitorService::run(
            GatheringEngine::new(config()),
            PatternStore::open(&dir).unwrap(),
            |handle| {
                for batch in batches.iter().take(6).cloned() {
                    handle.ingest(batch);
                }
                let ckpt = handle.checkpoint().unwrap();
                for batch in batches.iter().skip(6).cloned() {
                    handle.ingest(batch);
                }
                handle.flush();
                (ckpt, handle.stored())
            },
        );
        assert!(first.errors.is_empty(), "{:?}", first.errors);
        let (ckpt, stored_after_first) = first.value;
        drop(first.store);

        // Second run resumes from the *older* checkpoint against the full
        // store: every re-finalized record is verified against the stored
        // one and skipped, never duplicated.
        let engine = crate::checkpoint::restore_from_slice(&ckpt).unwrap();
        let resumed = MonitorService::run(engine, PatternStore::open(&dir).unwrap(), |handle| {
            for batch in batches.iter().skip(6).cloned() {
                handle.ingest(batch);
            }
            handle.flush();
            handle.stored()
        });
        assert!(resumed.errors.is_empty(), "{:?}", resumed.errors);
        assert_eq!(resumed.value, stored_after_first, "no duplicates, no loss");
        assert_eq!(resumed.engine.finalized_records().len(), stored_after_first);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn divergent_store_halts_durable_storage() {
        let db = scene();
        let batches = tick_batches(&db);
        let dir = temp_dir("diverge");

        // Populate the store with one configuration's records...
        let first = MonitorService::run(
            GatheringEngine::new(config()),
            PatternStore::open(&dir).unwrap(),
            |handle| {
                for batch in batches.iter().cloned() {
                    handle.ingest(batch);
                }
                handle.flush();
                handle.stored()
            },
        );
        assert!(first.value >= 1);
        drop(first.store);

        // ...then resume a fresh engine over a *shifted* copy of the scene:
        // the crowds it finalizes live at different coordinates, so the
        // first re-finalized record diverges from the stored one.  The
        // divergence halts storage; the store is never corrupted by appends
        // from a foreign engine.
        let shifted = TrajectoryDatabase::from_trajectories((0..4u32).map(|i| {
            Trajectory::from_points(
                ObjectId::new(i),
                (0..8u32)
                    .map(|t| (t, (1_000.0 + f64::from(i) * 10.0, t as f64)))
                    .collect::<Vec<_>>(),
            )
        }));
        let outcome = MonitorService::run(
            GatheringEngine::new(config()),
            PatternStore::open(&dir).unwrap(),
            |handle| {
                for t in shifted.time_domain().unwrap().iter() {
                    handle.ingest(ClusterDatabase::build_interval(
                        &shifted,
                        &config().clustering,
                        TimeInterval::new(t, t),
                    ));
                }
                // One empty tick so the blob's crowd actually finalizes.
                handle.ingest(ClusterDatabase::build_interval(
                    &db,
                    &config().clustering,
                    TimeInterval::new(8, 9),
                ));
                handle.flush();
                handle.stored()
            },
        );
        assert!(
            outcome.errors.iter().any(|e| e.contains("diverges")),
            "{:?}",
            outcome.errors
        );
        assert_eq!(outcome.value, first.value, "the store was left untouched");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
