//! The monitoring façade: one ingestion thread feeding a
//! [`GatheringEngine`] and a [`PatternStore`], while any number of caller
//! threads run store queries concurrently.
//!
//! Following the `par.rs` idiom of `gpdt-core`, the service is built from
//! `std::thread::scope` and `std::sync::mpsc` channels — no runtime, no
//! external dependencies.  [`MonitorService::run`] owns the engine for the
//! duration of a scope: an ingest worker drains a command channel
//! (cluster batches, flush barriers, checkpoint requests) and appends every
//! newly finalized crowd record to the store behind an `RwLock`, while the
//! caller's closure — and any threads it spawns — issues queries through the
//! shared [`ServiceHandle`].  When the closure returns, the channel closes,
//! the worker drains and exits, and the engine and store are handed back.
//!
//! Because the worker is the only writer and queries take the read lock,
//! queries never block each other; a query racing an ingest sees either the
//! store before or after that batch's records, never a torn state.  Call
//! [`ServiceHandle::flush`] first for deterministic results.
//!
//! ```
//! use gpdt_clustering::ClusterDatabase;
//! use gpdt_core::{GatheringConfig, GatheringEngine};
//! use gpdt_store::{MonitorService, PatternStore};
//! use gpdt_trajectory::{ObjectId, TimeInterval, Trajectory, TrajectoryDatabase};
//!
//! // Five objects linger together for six ticks, then scatter — the crowd
//! // they form is finalized (and stored) once the scattered ticks arrive.
//! let db = TrajectoryDatabase::from_trajectories((0..5u32).map(|i| {
//!     Trajectory::from_points(
//!         ObjectId::new(i),
//!         (0..10u32)
//!             .map(|t| {
//!                 let x = if t < 6 { f64::from(i) * 10.0 } else { f64::from(i) * 10_000.0 };
//!                 (t, (x, t as f64))
//!             })
//!             .collect::<Vec<_>>(),
//!     )
//! }));
//! let config = GatheringConfig::builder()
//!     .clustering(gpdt_core::ClusteringParams::new(60.0, 3))
//!     .crowd(gpdt_core::CrowdParams::new(4, 4, 100.0))
//!     .gathering(gpdt_core::GatheringParams::new(3, 3))
//!     .build()
//!     .unwrap();
//!
//! let dir = std::env::temp_dir().join(format!("gpdt-doc-service-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let store = PatternStore::open(&dir).unwrap();
//! let engine = GatheringEngine::new(config);
//!
//! let outcome = MonitorService::run(engine, store, |handle| {
//!     // Feed the live stream one tick at a time...
//!     for t in 0..10u32 {
//!         let batch = ClusterDatabase::build_interval(
//!             &db,
//!             &config.clustering,
//!             TimeInterval::new(t, t),
//!         );
//!         handle.ingest(batch);
//!     }
//!     // ...and query the durable history at any point.
//!     handle.flush();
//!     handle.top_k(3).len()
//! });
//! assert!(outcome.errors.is_empty());
//! assert_eq!(outcome.value, 1);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

use std::io;
use std::sync::mpsc::{self, Receiver, Sender, SyncSender};
use std::sync::{Mutex, RwLock};

use gpdt_clustering::ClusterDatabase;
use gpdt_core::{CrowdRecord, GatheringEngine};
use gpdt_geo::Mbr;
use gpdt_shard::ShardedEngine;
use gpdt_trajectory::{ObjectId, TimeInterval, Timestamp};

use crate::store::{GatheringHit, PatternStore, RecordId};

/// Commands processed by the ingest worker, in FIFO order.
enum Command {
    /// Ingest one cluster batch and store the newly finalized records.
    Clusters(ClusterDatabase),
    /// Barrier: acknowledged only after every earlier command finished.
    Flush(SyncSender<()>),
    /// Serialise the engine state (after flushing the store so checkpoint
    /// and store stay in lockstep).
    Checkpoint(SyncSender<io::Result<Vec<u8>>>),
    /// Snapshot the service/engine counters.
    Stats(SyncSender<ServiceStats>),
}

/// The engine kinds [`MonitorService::run`] can drive: the single
/// [`GatheringEngine`] and the partitioned
/// [`ShardedEngine`].  The service only needs the
/// streaming surface they share — expected next tick, batch ingestion, the
/// append-only finalized-record feed, the database those records resolve
/// against, checkpoint serialisation and a load snapshot.
pub trait MonitoredEngine: Send {
    /// The tick the next batch must start at (`None` accepts any start).
    fn expected_next_tick(&self) -> Option<Timestamp>;
    /// Ingests one cluster batch (adjacency already validated).
    fn ingest_batch(&mut self, batch: ClusterDatabase);
    /// The append-only finalized-record feed mirrored into the store.
    fn finalized_feed(&self) -> &[CrowdRecord];
    /// The cluster database the finalized records resolve against.
    fn resolve_database(&self) -> &ClusterDatabase;
    /// Serialises a checkpoint of the complete discovery state.
    fn checkpoint_bytes(&self) -> Vec<u8>;
    /// Engine-side load numbers for [`ServiceStats`].
    fn load(&self) -> EngineLoad;
}

impl MonitoredEngine for GatheringEngine {
    fn expected_next_tick(&self) -> Option<Timestamp> {
        self.time_domain().map(|d| d.end + 1)
    }

    fn ingest_batch(&mut self, batch: ClusterDatabase) {
        self.ingest_clusters(batch);
    }

    fn finalized_feed(&self) -> &[CrowdRecord] {
        self.finalized_records()
    }

    fn resolve_database(&self) -> &ClusterDatabase {
        self.cluster_database()
    }

    fn checkpoint_bytes(&self) -> Vec<u8> {
        crate::checkpoint::checkpoint_to_vec(self)
    }

    fn load(&self) -> EngineLoad {
        let stats = self.stats();
        EngineLoad {
            open_sequences: stats.open_sequences,
            resident_ticks: stats.resident_ticks,
            per_shard_clusters: Vec::new(),
        }
    }
}

impl MonitoredEngine for ShardedEngine {
    fn expected_next_tick(&self) -> Option<Timestamp> {
        self.time_domain().map(|d| d.end + 1)
    }

    fn ingest_batch(&mut self, batch: ClusterDatabase) {
        self.ingest_clusters(batch);
    }

    fn finalized_feed(&self) -> &[CrowdRecord] {
        self.finalized_records()
    }

    fn resolve_database(&self) -> &ClusterDatabase {
        self.cluster_database()
    }

    fn checkpoint_bytes(&self) -> Vec<u8> {
        crate::sharded::sharded_checkpoint_to_vec(self)
    }

    fn load(&self) -> EngineLoad {
        let stats = self.stats();
        EngineLoad {
            open_sequences: stats
                .per_shard
                .iter()
                .map(|s| s.open_sequences)
                .sum::<usize>()
                + stats.open_merge_paths,
            resident_ticks: stats
                .per_shard
                .iter()
                .map(|s| s.resident_ticks)
                .max()
                .unwrap_or(0),
            per_shard_clusters: stats
                .per_shard
                .iter()
                .map(|s| s.resident_clusters)
                .collect(),
        }
    }
}

/// Engine-side load numbers surfaced through [`ServiceStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineLoad {
    /// Open crowd candidates (for a sharded engine: across all shards plus
    /// the merge sweep).
    pub open_sequences: usize,
    /// Resident cluster-database ticks (for a sharded engine: the maximum
    /// over the shards).
    pub resident_ticks: usize,
    /// Per-shard resident cluster counts; empty for a single engine.
    pub per_shard_clusters: Vec<usize>,
}

/// A consistent snapshot of the service's ingestion counters and the
/// engine's load, taken by the ingest worker between commands (so it never
/// races a batch).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Cluster batches applied so far.
    pub batches_ingested: u64,
    /// Batches rejected (non-adjacent start).
    pub batches_rejected: u64,
    /// Ticks applied so far.
    pub ticks_ingested: u64,
    /// Records the engine has finalized.
    pub finalized_records: usize,
    /// Records durably stored (trails `finalized_records` only transiently,
    /// or when durable storage halted).
    pub stored_records: usize,
    /// Engine-side load.
    pub engine: EngineLoad,
}

/// Everything [`MonitorService::run`] hands back: the engine and store (for
/// continued use, checkpointing or clean shutdown) plus the closure's result
/// and any ingestion errors.
#[derive(Debug)]
pub struct MonitorOutcome<T, E = GatheringEngine> {
    /// The engine, caught up with every ingested batch.
    pub engine: E,
    /// The store, holding every finalized record.
    pub store: PatternStore,
    /// The closure's return value.
    pub value: T,
    /// Ingestion-side errors (rejected batches, store I/O failures), in
    /// occurrence order.  Ingestion continues past errors; an empty list
    /// means every batch was applied and stored.
    pub errors: Vec<String>,
}

/// The concurrent monitoring service.  See the [module docs](self).
#[derive(Debug)]
pub struct MonitorService;

impl MonitorService {
    /// Runs the service for the duration of `f`.
    ///
    /// The engine must be the producer of the store's existing records (a
    /// freshly restored checkpoint next to its store, or a fresh engine next
    /// to an empty store): on startup the worker appends any finalized
    /// records the store does not hold yet, so a store lagging its engine's
    /// checkpoint catches up automatically.  A store holding records the
    /// engine never finalized — e.g. frontier crowds archived into it at a
    /// final shutdown — is detected at startup and excluded from further
    /// appends (reported via [`MonitorOutcome::errors`]); such an archive is
    /// an end state for queries, not a resumable companion.
    ///
    /// Sharded mode is the same call with a
    /// [`ShardedEngine`]: the engine fans every
    /// batch out across its shards and merges, the worker mirrors the merged
    /// finalized records into the store, and queries aggregate over the
    /// merged history exactly as in single-engine mode.
    ///
    /// # Panics
    ///
    /// Panics if the ingest worker panicked (it does not panic on malformed
    /// batches or I/O errors — those are reported via
    /// [`MonitorOutcome::errors`]).
    pub fn run<E, T, F>(engine: E, store: PatternStore, f: F) -> MonitorOutcome<T, E>
    where
        E: MonitoredEngine,
        F: FnOnce(&ServiceHandle<'_>) -> T,
    {
        let stored = store.len();
        let store = RwLock::new(store);
        let errors = Mutex::new(Vec::new());
        let (tx, rx) = mpsc::channel::<Command>();

        let (value, engine) = std::thread::scope(|scope| {
            let store_ref = &store;
            let errors_ref = &errors;
            let worker =
                scope.spawn(move || ingest_loop(engine, rx, store_ref, errors_ref, stored));
            let handle = ServiceHandle {
                tx: &tx,
                store: &store,
            };
            let value = f(&handle);
            drop(tx); // closes the channel; the worker drains and exits
            let engine = worker.join().expect("the ingest worker never panics");
            (value, engine)
        });

        MonitorOutcome {
            engine,
            store: store.into_inner().expect("no thread holds the store lock"),
            value,
            errors: errors.into_inner().expect("no thread holds the error lock"),
        }
    }
}

/// The ingest worker: drains commands, feeds the engine, mirrors newly
/// finalized records into the store.
fn ingest_loop<E: MonitoredEngine>(
    mut engine: E,
    rx: Receiver<Command>,
    store: &RwLock<PatternStore>,
    errors: &Mutex<Vec<String>>,
    mut stored: usize,
) -> E {
    let report = |message: String| {
        errors
            .lock()
            .expect("error list lock is never poisoned")
            .push(message);
    };

    // A restored engine may be ahead of its store (e.g. the store file is
    // fresh); catch up before serving.  The reverse — a store holding *more*
    // records than the engine has finalized — means the store is not this
    // engine's companion (e.g. frontier crowds were archived into it at a
    // clean shutdown); appending to it would interleave unrelated records,
    // so durable storage halts instead.
    let mut storing = if stored > engine.finalized_feed().len() {
        report(format!(
            "store holds {stored} records but the engine has only {} finalized — \
             not this engine's companion store; durable storage halted, discovery continues",
            engine.finalized_feed().len()
        ));
        false
    } else {
        store_new_finalized(&engine, store, &mut stored, &report)
    };

    let mut batches_ingested: u64 = 0;
    let mut batches_rejected: u64 = 0;
    let mut ticks_ingested: u64 = 0;
    while let Ok(command) = rx.recv() {
        match command {
            Command::Clusters(batch) => {
                let Some(batch_domain) = batch.time_domain() else {
                    continue; // empty batches are no-ops
                };
                // `ingest_clusters` treats a non-adjacent batch as a
                // programmer error and panics; a long-running service
                // rejects it instead and keeps serving.
                if let Some(expected) = engine.expected_next_tick() {
                    if batch_domain.start != expected {
                        report(format!(
                            "rejected batch starting at t={} (expected t={expected})",
                            batch_domain.start
                        ));
                        batches_rejected += 1;
                        continue;
                    }
                }
                engine.ingest_batch(batch);
                batches_ingested += 1;
                ticks_ingested += u64::from(batch_domain.len());
                if storing {
                    storing = store_new_finalized(&engine, store, &mut stored, &report);
                }
            }
            Command::Flush(ack) => {
                let _ = ack.send(());
            }
            Command::Stats(reply) => {
                let _ = reply.send(ServiceStats {
                    batches_ingested,
                    batches_rejected,
                    ticks_ingested,
                    finalized_records: engine.finalized_feed().len(),
                    stored_records: stored,
                    engine: engine.load(),
                });
            }
            Command::Checkpoint(reply) => {
                // The advertised contract is a *consistent* (checkpoint,
                // store) pair: retry any backfill a transient error left
                // pending, and refuse the checkpoint if the store still
                // lags the engine's finalized records.
                if storing {
                    storing = store_new_finalized(&engine, store, &mut stored, &report);
                }
                let result = if !storing {
                    Err(io::Error::other(
                        "durable storage is halted (see the service error list); checkpoint refused",
                    ))
                } else if stored < engine.finalized_feed().len() {
                    Err(io::Error::other(
                        "store is lagging the engine's finalized records; checkpoint refused",
                    ))
                } else {
                    store
                        .write()
                        .expect("store lock is never poisoned")
                        .sync()
                        .map(|()| engine.checkpoint_bytes())
                };
                let _ = reply.send(result);
            }
        }
    }
    engine
}

/// Appends every engine-finalized record the store does not hold yet;
/// returns `false` if durable storage must halt for the rest of the session.
///
/// The store must always hold a *prefix* of the engine's finalized records —
/// crash recovery backfills `finalized[store.len()..]`, so skipping a failed
/// record would leave a permanent hole and duplicate its successors.  On a
/// (presumed transient) I/O error the cursor therefore stops at the failed
/// record and retries on the next batch — a failed append rolls the log
/// back, so that is safe.  An `InvalidInput` rejection can never succeed on
/// retry, so it halts storage entirely (discovery keeps running) instead of
/// livelocking and flooding the error list.
fn store_new_finalized<E: MonitoredEngine>(
    engine: &E,
    store: &RwLock<PatternStore>,
    stored: &mut usize,
    report: &impl Fn(String),
) -> bool {
    let records = engine.finalized_feed();
    if *stored >= records.len() {
        return true;
    }
    let cdb = engine.resolve_database();
    let mut store = store.write().expect("store lock is never poisoned");
    for record in &records[*stored..] {
        // Under bounded retention a record can only outlive its clusters if
        // the store lagged across an eviction (a halted or chronically
        // failing store); converting it would panic, so halt explicitly.
        let resolvable = record
            .crowd
            .cluster_ids()
            .iter()
            .chain(
                record
                    .gatherings
                    .iter()
                    .flat_map(|g| g.crowd().cluster_ids()),
            )
            .all(|&id| cdb.cluster(id).is_some());
        if !resolvable {
            report(format!(
                "finalized record #{} references evicted clusters (store lagged across a \
                 retention eviction); halting durable storage, discovery continues",
                *stored
            ));
            return false;
        }
        match store.append_crowd_record(record, cdb) {
            Ok(_) => *stored += 1,
            Err(err) if err.kind() == io::ErrorKind::InvalidInput => {
                report(format!(
                    "finalized record #{} is invalid ({err}); halting durable storage, \
                     discovery continues",
                    *stored
                ));
                return false;
            }
            Err(err) => {
                report(format!(
                    "could not store finalized record #{}: {err} (will retry)",
                    *stored
                ));
                return true;
            }
        }
    }
    true
}

/// The caller-side handle of a running [`MonitorService`].
///
/// Cheap to share (`&ServiceHandle` is `Send + Sync`): spawn as many query
/// threads as needed inside the service closure.
#[derive(Debug)]
pub struct ServiceHandle<'a> {
    tx: &'a Sender<Command>,
    store: &'a RwLock<PatternStore>,
}

impl ServiceHandle<'_> {
    /// Enqueues one cluster batch for ingestion and returns immediately.
    ///
    /// Batches are applied in submission order.  A batch that does not start
    /// right after the engine's current time domain is rejected (reported in
    /// [`MonitorOutcome::errors`]); empty batches are ignored.
    pub fn ingest(&self, batch: ClusterDatabase) {
        self.tx
            .send(Command::Clusters(batch))
            .expect("the ingest worker outlives every handle");
    }

    /// Blocks until every previously enqueued batch has been ingested and
    /// its finalized records stored.  Queries after a flush are
    /// deterministic.
    pub fn flush(&self) {
        let (ack, wait) = mpsc::sync_channel(0);
        self.tx
            .send(Command::Flush(ack))
            .expect("the ingest worker outlives every handle");
        wait.recv().expect("the ingest worker answers every flush");
    }

    /// Flushes, fsyncs the store and serialises the engine state — a
    /// consistent (checkpoint, store) pair for crash recovery.
    ///
    /// # Errors
    ///
    /// Propagates store I/O errors; the engine serialisation itself cannot
    /// fail.
    pub fn checkpoint(&self) -> io::Result<Vec<u8>> {
        let (reply, wait) = mpsc::sync_channel(0);
        self.tx
            .send(Command::Checkpoint(reply))
            .expect("the ingest worker outlives every handle");
        wait.recv()
            .expect("the ingest worker answers every checkpoint request")
    }

    /// Number of records currently stored.
    pub fn stored(&self) -> usize {
        self.read().len()
    }

    /// A consistent snapshot of the service's ingestion counters and the
    /// engine's load (taken by the ingest worker, so it reflects every batch
    /// enqueued before this call once they have been applied — call
    /// [`ServiceHandle::flush`] first for a quiescent snapshot).
    pub fn stats(&self) -> ServiceStats {
        let (reply, wait) = mpsc::sync_channel(0);
        self.tx
            .send(Command::Stats(reply))
            .expect("the ingest worker outlives every handle");
        wait.recv()
            .expect("the ingest worker answers every stats request")
    }

    /// The region × time-window query (see
    /// [`PatternStore::query_gatherings`]); results are owned so the store
    /// lock is released before returning.
    pub fn query_gatherings(&self, region: &Mbr, window: TimeInterval) -> Vec<GatheringHit> {
        self.read().query_gatherings(region, window)
    }

    /// Record ids of crowds active during `window`
    /// (see [`PatternStore::crowds_in_window`]).
    pub fn crowds_in_window(&self, window: TimeInterval) -> Vec<RecordId> {
        self.read().crowds_in_window(window)
    }

    /// The participation history of one object
    /// (see [`PatternStore::object_history`]).
    pub fn object_history(&self, object: ObjectId) -> Vec<GatheringHit> {
        self.read().object_history(object)
    }

    /// The `k` most-attended stored gatherings
    /// (see [`PatternStore::top_k_gatherings`]).
    pub fn top_k(&self, k: usize) -> Vec<GatheringHit> {
        self.read().top_k_gatherings(k)
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, PatternStore> {
        self.store.read().expect("store lock is never poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpdt_core::{
        ClusteringParams, CrowdParams, GatheringConfig, GatheringParams, GatheringPipeline,
    };
    use gpdt_trajectory::{ObjectId, Trajectory, TrajectoryDatabase};
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gpdt-service-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn config() -> GatheringConfig {
        GatheringConfig::builder()
            .clustering(ClusteringParams::new(60.0, 3))
            .crowd(CrowdParams::new(3, 3, 100.0))
            .gathering(GatheringParams::new(3, 3))
            .build()
            .unwrap()
    }

    /// Two separate lingering blobs, one after the other, so at least two
    /// crowds finalize at different times.
    fn scene() -> TrajectoryDatabase {
        let mut trajectories = Vec::new();
        for i in 0..4u32 {
            trajectories.push(Trajectory::from_points(
                ObjectId::new(i),
                (0..8u32)
                    .map(|t| (t, (i as f64 * 10.0, t as f64)))
                    .collect::<Vec<_>>(),
            ));
        }
        for i in 10..14u32 {
            trajectories.push(Trajectory::from_points(
                ObjectId::new(i),
                (10..20u32)
                    .map(|t| (t, (5_000.0 + f64::from(i) * 10.0, t as f64)))
                    .collect::<Vec<_>>(),
            ));
        }
        TrajectoryDatabase::from_trajectories(trajectories)
    }

    fn tick_batches(db: &TrajectoryDatabase) -> Vec<ClusterDatabase> {
        let domain = db.time_domain().unwrap();
        domain
            .iter()
            .map(|t| {
                ClusterDatabase::build_interval(db, &config().clustering, TimeInterval::new(t, t))
            })
            .collect()
    }

    #[test]
    fn service_matches_offline_run_and_serves_queries() {
        let db = scene();
        let reference = GatheringPipeline::new(config()).discover(&db);
        assert!(reference.crowd_count() >= 2);

        let dir = temp_dir("match");
        let store = PatternStore::open(&dir).unwrap();
        let engine = GatheringEngine::new(config());
        let outcome = MonitorService::run(engine, store, |handle| {
            for batch in tick_batches(&db) {
                handle.ingest(batch);
            }
            handle.flush();
            (
                handle.stored(),
                handle.top_k(10),
                handle.object_history(ObjectId::new(0)),
            )
        });
        assert!(outcome.errors.is_empty(), "{:?}", outcome.errors);

        // The engine matches an offline batch run...
        assert_eq!(outcome.engine.closed_crowds(), reference.crowds);
        assert_eq!(outcome.engine.gatherings(), reference.gatherings);

        // ...and the store holds every *finalized* record (the final
        // frontier crowd only finalizes once later data arrives).
        let (stored, top, history) = outcome.value;
        assert_eq!(stored, outcome.engine.finalized_records().len());
        assert!(!top.is_empty());
        assert!(!history.is_empty());

        // Reopening the store finds the same records.
        drop(outcome.store);
        let reopened = PatternStore::open(&dir).unwrap();
        assert_eq!(reopened.len(), stored);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_queries_run_during_ingestion() {
        let db = scene();
        let dir = temp_dir("concurrent");
        let store = PatternStore::open(&dir).unwrap();
        let engine = GatheringEngine::new(config());
        let outcome = MonitorService::run(engine, store, |handle| {
            std::thread::scope(|scope| {
                let ingester = scope.spawn(|| {
                    for batch in tick_batches(&db) {
                        handle.ingest(batch);
                    }
                    handle.flush();
                });
                // Hammer queries from two threads while ingestion runs; the
                // count is monotone because the store is append-only.
                let mut watchers = Vec::new();
                for _ in 0..2 {
                    watchers.push(scope.spawn(|| {
                        let mut last = 0;
                        for _ in 0..200 {
                            let now = handle.stored();
                            assert!(now >= last, "store count went backwards");
                            last = now;
                            let _ = handle.top_k(3);
                            let _ = handle.crowds_in_window(TimeInterval::new(0, 100));
                        }
                    }));
                }
                ingester.join().unwrap();
                for watcher in watchers {
                    watcher.join().unwrap();
                }
            });
            handle.stored()
        });
        assert!(outcome.errors.is_empty(), "{:?}", outcome.errors);
        assert_eq!(outcome.value, outcome.engine.finalized_records().len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn non_adjacent_batches_are_rejected_not_fatal() {
        let db = scene();
        let batches = tick_batches(&db);
        let dir = temp_dir("reject");
        let store = PatternStore::open(&dir).unwrap();
        let engine = GatheringEngine::new(config());
        let outcome = MonitorService::run(engine, store, |handle| {
            handle.ingest(batches[0].clone());
            handle.ingest(batches[5].clone()); // gap: rejected
            handle.ingest(batches[1].clone()); // still accepted
            handle.flush();
        });
        assert_eq!(outcome.errors.len(), 1);
        assert!(
            outcome.errors[0].contains("rejected batch"),
            "{:?}",
            outcome.errors
        );
        assert_eq!(outcome.engine.time_domain(), Some(TimeInterval::new(0, 1)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_through_the_service_is_restorable() {
        let db = scene();
        let batches = tick_batches(&db);
        let dir = temp_dir("checkpoint");
        let store = PatternStore::open(&dir).unwrap();
        let engine = GatheringEngine::new(config());
        let outcome = MonitorService::run(engine, store, |handle| {
            for batch in batches.iter().take(12).cloned() {
                handle.ingest(batch);
            }
            handle.checkpoint().unwrap()
        });
        assert!(outcome.errors.is_empty());

        // Restore mid-stream, feed the rest, compare with the uninterrupted
        // engine continuing from the same point.
        let mut restored = crate::checkpoint::restore_from_slice(&outcome.value).unwrap();
        let mut uninterrupted = outcome.engine;
        for batch in batches.iter().skip(12) {
            restored.ingest_clusters(batch.clone());
            uninterrupted.ingest_clusters(batch.clone());
        }
        assert_eq!(restored.closed_crowds(), uninterrupted.closed_crowds());
        assert_eq!(restored.gatherings(), uninterrupted.gatherings());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_snapshot_tracks_ingestion_and_engine_load() {
        let db = scene();
        let batches = tick_batches(&db);
        let total_ticks = batches.len() as u64;
        let dir = temp_dir("stats");
        let store = PatternStore::open(&dir).unwrap();
        let engine = GatheringEngine::new(config());
        let outcome = MonitorService::run(engine, store, |handle| {
            for batch in batches.iter().cloned() {
                handle.ingest(batch);
            }
            handle.flush();
            let mid = handle.stats();
            handle.ingest(batches[3].clone()); // non-adjacent: rejected
            handle.flush();
            (mid, handle.stats())
        });
        let (mid, end) = outcome.value;
        assert_eq!(mid.batches_ingested, total_ticks);
        assert_eq!(mid.batches_rejected, 0);
        assert_eq!(mid.ticks_ingested, total_ticks);
        assert_eq!(
            mid.finalized_records,
            outcome.engine.finalized_records().len()
        );
        assert_eq!(mid.stored_records, mid.finalized_records);
        assert!(mid.engine.resident_ticks > 0);
        assert!(mid.engine.per_shard_clusters.is_empty());
        assert_eq!(end.batches_rejected, 1);
        assert_eq!(end.ticks_ingested, total_ticks);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sharded_mode_matches_single_mode_and_serves_queries() {
        use gpdt_shard::{GridPartitioner, Partitioner};

        let db = scene();
        let batches = tick_batches(&db);

        // Reference: single-engine service over the same stream.
        let single_dir = temp_dir("sharded-ref");
        let single = MonitorService::run(
            GatheringEngine::new(config()),
            PatternStore::open(&single_dir).unwrap(),
            |handle| {
                for batch in batches.iter().cloned() {
                    handle.ingest(batch);
                }
                handle.flush();
                handle.stored()
            },
        );
        assert!(single.errors.is_empty(), "{:?}", single.errors);

        let dir = temp_dir("sharded");
        let store = PatternStore::open(&dir).unwrap();
        let engine =
            ShardedEngine::new(config(), 3, Partitioner::Grid(GridPartitioner::new(300.0)));
        let outcome = MonitorService::run(engine, store, |handle| {
            for batch in batches.iter().cloned() {
                handle.ingest(batch);
            }
            handle.flush();
            let stats = handle.stats();
            (handle.stored(), handle.top_k(10), stats)
        });
        assert!(outcome.errors.is_empty(), "{:?}", outcome.errors);
        let (stored, top, stats) = outcome.value;

        // The sharded engine's canonical output and durable feed match the
        // single engine's.
        assert_eq!(
            outcome.engine.closed_crowds(),
            single.engine.closed_crowds()
        );
        assert_eq!(outcome.engine.gatherings(), single.engine.gatherings());
        assert_eq!(stored, single.value);
        assert!(!top.is_empty());
        assert_eq!(stats.engine.per_shard_clusters.len(), 3);
        assert_eq!(stats.stored_records, stored);
        assert_eq!(stats.finalized_records, stored);

        // The checkpoint taken through the service restores to an engine
        // that continues identically.
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&single_dir).unwrap();
    }

    #[test]
    fn sharded_checkpoint_through_the_service_is_restorable() {
        use gpdt_shard::{GridPartitioner, Partitioner};

        let db = scene();
        let batches = tick_batches(&db);
        let dir = temp_dir("sharded-checkpoint");
        let store = PatternStore::open(&dir).unwrap();
        let engine =
            ShardedEngine::new(config(), 2, Partitioner::Grid(GridPartitioner::new(300.0)));
        let outcome = MonitorService::run(engine, store, |handle| {
            for batch in batches.iter().take(12).cloned() {
                handle.ingest(batch);
            }
            handle.checkpoint().unwrap()
        });
        assert!(outcome.errors.is_empty(), "{:?}", outcome.errors);

        let mut restored = crate::sharded::restore_sharded_from_slice(&outcome.value).unwrap();
        let mut uninterrupted = outcome.engine;
        for batch in batches.iter().skip(12) {
            restored.ingest_clusters(batch.clone());
            uninterrupted.ingest_clusters(batch.clone());
        }
        assert_eq!(restored.closed_crowds(), uninterrupted.closed_crowds());
        assert_eq!(restored.gatherings(), uninterrupted.gatherings());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restored_engine_backfills_a_lagging_store() {
        let db = scene();
        let mut engine = GatheringEngine::new(config());
        engine.ingest_trajectories(&db);
        let finalized = engine.finalized_records().len();
        assert!(finalized >= 1);

        // Fresh (empty) store next to an engine with history: the worker
        // catches the store up before processing any command.
        let dir = temp_dir("backfill");
        let store = PatternStore::open(&dir).unwrap();
        let outcome = MonitorService::run(engine, store, |handle| {
            handle.flush();
            handle.stored()
        });
        assert!(outcome.errors.is_empty());
        assert_eq!(outcome.value, finalized);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
