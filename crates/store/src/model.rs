//! [`Encode`]/[`Decode`] implementations for the workspace's domain types.
//!
//! Every implementation validates the type's invariants on decode and reports
//! violations as [`DecodeError::Corrupt`] instead of hitting the constructor
//! panics the in-memory API uses for programmer errors: a store or checkpoint
//! file is external input and must never abort the process.
//!
//! Types that cache derived geometry (cluster MBRs and centroids) are
//! serialised from their defining data only — members and points — and the
//! caches are deterministically recomputed by the constructors on decode, so
//! a decoded value is always indistinguishable from the originally encoded
//! one.

use std::io::{self, Read, Write};

use gpdt_clustering::{
    ClusterDatabase, ClusterId, SnapshotCluster, SnapshotClusterSet, SnapshotClusterSetBuilder,
};
use gpdt_core::{
    Crowd, CrowdParams, CrowdRecord, Gathering, GatheringConfig, GatheringParams,
    RangeSearchStrategy, TadVariant,
};
use gpdt_geo::{Mbr, Point};
use gpdt_trajectory::{ObjectId, Sample, TimeInterval, Trajectory, TrajectoryDatabase};

use crate::codec::{Decode, DecodeError, Encode};
use gpdt_clustering::ClusteringParams;

impl Encode for Point {
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        self.x.encode(w)?;
        self.y.encode(w)
    }
}

impl Decode for Point {
    fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, DecodeError> {
        let x = f64::decode(r)?;
        let y = f64::decode(r)?;
        if !(x.is_finite() && y.is_finite()) {
            return Err(DecodeError::Corrupt("non-finite point coordinate"));
        }
        Ok(Point::new(x, y))
    }
}

impl Encode for Mbr {
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        self.min_x.encode(w)?;
        self.min_y.encode(w)?;
        self.max_x.encode(w)?;
        self.max_y.encode(w)
    }
}

impl Decode for Mbr {
    fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, DecodeError> {
        let min_x = f64::decode(r)?;
        let min_y = f64::decode(r)?;
        let max_x = f64::decode(r)?;
        let max_y = f64::decode(r)?;
        let finite = [min_x, min_y, max_x, max_y].iter().all(|v| v.is_finite());
        if !finite || min_x > max_x || min_y > max_y {
            return Err(DecodeError::Corrupt("invalid MBR corners"));
        }
        Ok(Mbr::new(min_x, min_y, max_x, max_y))
    }
}

impl Encode for ObjectId {
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        self.raw().encode(w)
    }
}

impl Decode for ObjectId {
    fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, DecodeError> {
        Ok(ObjectId::new(u32::decode(r)?))
    }
}

impl Encode for TimeInterval {
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        self.start.encode(w)?;
        self.end.encode(w)
    }
}

impl Decode for TimeInterval {
    fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, DecodeError> {
        let start = u32::decode(r)?;
        let end = u32::decode(r)?;
        if start > end {
            return Err(DecodeError::Corrupt("reversed time interval"));
        }
        Ok(TimeInterval::new(start, end))
    }
}

impl Encode for Sample {
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        self.time.encode(w)?;
        self.position.encode(w)
    }
}

impl Decode for Sample {
    fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, DecodeError> {
        let time = u32::decode(r)?;
        let position = Point::decode(r)?;
        Ok(Sample::new(time, position))
    }
}

impl Encode for Trajectory {
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        self.id().encode(w)?;
        self.samples().encode(w)
    }
}

impl Decode for Trajectory {
    fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, DecodeError> {
        let id = ObjectId::decode(r)?;
        let samples: Vec<Sample> = Vec::decode(r)?;
        if samples.is_empty() {
            return Err(DecodeError::Corrupt("trajectory without samples"));
        }
        Ok(Trajectory::new(id, samples))
    }
}

impl Encode for TrajectoryDatabase {
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        self.len().encode(w)?;
        for trajectory in self.iter() {
            trajectory.encode(w)?;
        }
        Ok(())
    }
}

impl Decode for TrajectoryDatabase {
    fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, DecodeError> {
        let trajectories: Vec<Trajectory> = Vec::decode(r)?;
        Ok(TrajectoryDatabase::from_trajectories(trajectories))
    }
}

impl Encode for ClusteringParams {
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        self.eps.encode(w)?;
        self.min_pts.encode(w)
    }
}

impl Decode for ClusteringParams {
    fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, DecodeError> {
        let eps = f64::decode(r)?;
        let min_pts = usize::decode(r)?;
        if !(eps.is_finite() && eps > 0.0) || min_pts == 0 {
            return Err(DecodeError::Corrupt("invalid clustering parameters"));
        }
        Ok(ClusteringParams::new(eps, min_pts))
    }
}

impl Encode for CrowdParams {
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        self.mc.encode(w)?;
        self.kc.encode(w)?;
        self.delta.encode(w)
    }
}

impl Decode for CrowdParams {
    fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, DecodeError> {
        let mc = usize::decode(r)?;
        let kc = u32::decode(r)?;
        let delta = f64::decode(r)?;
        if mc == 0 || kc == 0 || !(delta.is_finite() && delta > 0.0) {
            return Err(DecodeError::Corrupt("invalid crowd parameters"));
        }
        Ok(CrowdParams::new(mc, kc, delta))
    }
}

impl Encode for GatheringParams {
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        self.mp.encode(w)?;
        self.kp.encode(w)
    }
}

impl Decode for GatheringParams {
    fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, DecodeError> {
        let mp = usize::decode(r)?;
        let kp = u32::decode(r)?;
        if mp == 0 || kp == 0 {
            return Err(DecodeError::Corrupt("invalid gathering parameters"));
        }
        Ok(GatheringParams::new(mp, kp))
    }
}

impl Encode for GatheringConfig {
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        self.clustering.encode(w)?;
        self.crowd.encode(w)?;
        self.gathering.encode(w)
    }
}

impl Decode for GatheringConfig {
    fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, DecodeError> {
        let config = GatheringConfig {
            clustering: ClusteringParams::decode(r)?,
            crowd: CrowdParams::decode(r)?,
            gathering: GatheringParams::decode(r)?,
        };
        config
            .validate()
            .map_err(|_| DecodeError::Corrupt("inconsistent gathering configuration"))?;
        Ok(config)
    }
}

impl Encode for RangeSearchStrategy {
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        let tag: u8 = match self {
            RangeSearchStrategy::BruteForce => 0,
            RangeSearchStrategy::RTreeDmin => 1,
            RangeSearchStrategy::RTreeDside => 2,
            RangeSearchStrategy::Grid => 3,
        };
        tag.encode(w)
    }
}

impl Decode for RangeSearchStrategy {
    fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(RangeSearchStrategy::BruteForce),
            1 => Ok(RangeSearchStrategy::RTreeDmin),
            2 => Ok(RangeSearchStrategy::RTreeDside),
            3 => Ok(RangeSearchStrategy::Grid),
            _ => Err(DecodeError::Corrupt("unknown range-search strategy tag")),
        }
    }
}

impl Encode for TadVariant {
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        let tag: u8 = match self {
            TadVariant::BruteForce => 0,
            TadVariant::Tad => 1,
            TadVariant::TadStar => 2,
        };
        tag.encode(w)
    }
}

impl Decode for TadVariant {
    fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(TadVariant::BruteForce),
            1 => Ok(TadVariant::Tad),
            2 => Ok(TadVariant::TadStar),
            _ => Err(DecodeError::Corrupt("unknown detection variant tag")),
        }
    }
}

impl Encode for ClusterId {
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        self.time.encode(w)?;
        self.index.encode(w)
    }
}

impl Decode for ClusterId {
    fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, DecodeError> {
        let time = u32::decode(r)?;
        let index = usize::decode(r)?;
        Ok(ClusterId::new(time, index))
    }
}

impl Encode for SnapshotCluster {
    /// Standalone (row-oriented) cluster frame: time, member list, point
    /// list.  Cluster *sets* use the columnar frame below instead; this frame
    /// remains for values encoded outside a set and matches the v1 layout.
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        self.time().encode(w)?;
        self.members().encode(w)?;
        let points = self.points();
        points.len().encode(w)?;
        for i in 0..points.len() {
            points.point(i).encode(w)?;
        }
        Ok(())
    }
}

impl Decode for SnapshotCluster {
    fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, DecodeError> {
        let time = u32::decode(r)?;
        let members: Vec<ObjectId> = Vec::decode(r)?;
        let points: Vec<Point> = Vec::decode(r)?;
        if members.is_empty() {
            return Err(DecodeError::Corrupt("empty snapshot cluster"));
        }
        if members.len() != points.len() {
            return Err(DecodeError::Corrupt(
                "cluster member and point lists differ in length",
            ));
        }
        Ok(SnapshotCluster::new(time, members, points))
    }
}

impl Encode for SnapshotClusterSet {
    /// Columnar set frame (checkpoint v2): timestamp, cluster count,
    /// per-cluster lengths, then the tick's shared arenas as flat columns —
    /// all member ids, all x coordinates, all y coordinates.  One length
    /// prefix and three homogeneous streams instead of a header per cluster.
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        self.time.encode(w)?;
        self.clusters.len().encode(w)?;
        for c in &self.clusters {
            c.len().encode(w)?;
        }
        for c in &self.clusters {
            for &id in c.members() {
                id.encode(w)?;
            }
        }
        for c in &self.clusters {
            for &x in c.points().xs() {
                x.encode(w)?;
            }
        }
        for c in &self.clusters {
            for &y in c.points().ys() {
                y.encode(w)?;
            }
        }
        Ok(())
    }
}

impl Decode for SnapshotClusterSet {
    fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, DecodeError> {
        let time = u32::decode(r)?;
        let count = usize::decode(r)?;
        // Bounded initial capacities, as in `Vec::decode`: corrupt lengths
        // surface as truncation errors instead of huge allocations.
        let mut lens = Vec::with_capacity(count.min(4096));
        let mut total = 0usize;
        for _ in 0..count {
            let len = usize::decode(r)?;
            if len == 0 {
                return Err(DecodeError::Corrupt("empty snapshot cluster"));
            }
            total = total
                .checked_add(len)
                .filter(|&t| t <= u32::MAX as usize)
                .ok_or(DecodeError::Corrupt("cluster arena length overflows"))?;
            lens.push(len);
        }
        let mut ids = Vec::with_capacity(total.min(4096));
        for _ in 0..total {
            ids.push(ObjectId::decode(r)?);
        }
        let read_coords = |r: &mut R| -> Result<Vec<f64>, DecodeError> {
            let mut out = Vec::with_capacity(total.min(4096));
            for _ in 0..total {
                let v = f64::decode(r)?;
                if !v.is_finite() {
                    return Err(DecodeError::Corrupt("non-finite point coordinate"));
                }
                out.push(v);
            }
            Ok(out)
        };
        let xs = read_coords(r)?;
        let ys = read_coords(r)?;
        let mut builder = SnapshotClusterSetBuilder::new(time);
        let mut offset = 0;
        for len in lens {
            for i in offset..offset + len {
                builder.push_member(ids[i], xs[i], ys[i]);
            }
            builder.end_cluster();
            offset += len;
        }
        Ok(builder.finish())
    }
}

impl Encode for ClusterDatabase {
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        self.len().encode(w)?;
        for set in self.iter() {
            set.encode(w)?;
        }
        Ok(())
    }
}

impl Decode for ClusterDatabase {
    fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, DecodeError> {
        let sets: Vec<SnapshotClusterSet> = Vec::decode(r)?;
        if sets.windows(2).any(|w| w[1].time != w[0].time + 1) {
            return Err(DecodeError::Corrupt(
                "cluster sets do not cover contiguous timestamps",
            ));
        }
        Ok(ClusterDatabase::from_sets(sets))
    }
}

/// Decodes a v1 (row-oriented) cluster-set frame: timestamp followed by a
/// `Vec` of standalone cluster frames.  Kept so checkpoints written before
/// the columnar format remain restorable.
pub(crate) fn decode_cluster_set_v1<R: Read + ?Sized>(
    r: &mut R,
) -> Result<SnapshotClusterSet, DecodeError> {
    let time = u32::decode(r)?;
    let clusters: Vec<SnapshotCluster> = Vec::decode(r)?;
    if clusters.iter().any(|c| c.time() != time) {
        return Err(DecodeError::Corrupt(
            "cluster timestamp differs from its set's timestamp",
        ));
    }
    Ok(SnapshotClusterSet { time, clusters })
}

/// Decodes a v1 cluster database: length prefix followed by v1 set frames.
pub(crate) fn decode_cluster_database_v1<R: Read + ?Sized>(
    r: &mut R,
) -> Result<ClusterDatabase, DecodeError> {
    let len = usize::decode(r)?;
    let mut sets = Vec::with_capacity(len.min(4096));
    for _ in 0..len {
        sets.push(decode_cluster_set_v1(r)?);
    }
    if sets.windows(2).any(|w| w[1].time != w[0].time + 1) {
        return Err(DecodeError::Corrupt(
            "cluster sets do not cover contiguous timestamps",
        ));
    }
    Ok(ClusterDatabase::from_sets(sets))
}

/// Encodes a cluster database in the v1 layout.  Only used by tests to forge
/// old-format checkpoints; production code always writes the current format.
#[cfg(test)]
pub(crate) fn encode_cluster_database_v1<W: Write + ?Sized>(
    cdb: &ClusterDatabase,
    w: &mut W,
) -> io::Result<()> {
    cdb.len().encode(w)?;
    for set in cdb.iter() {
        set.time.encode(w)?;
        set.clusters.encode(w)?;
    }
    Ok(())
}

impl Encode for Crowd {
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        self.cluster_ids().encode(w)
    }
}

impl Decode for Crowd {
    fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, DecodeError> {
        let ids: Vec<ClusterId> = Vec::decode(r)?;
        if ids.is_empty() {
            return Err(DecodeError::Corrupt("crowd without clusters"));
        }
        if ids.windows(2).any(|w| w[1].time != w[0].time + 1) {
            return Err(DecodeError::Corrupt(
                "crowd clusters are not at consecutive timestamps",
            ));
        }
        Ok(Crowd::new(ids))
    }
}

impl Encode for Gathering {
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        self.crowd().encode(w)?;
        self.participators().encode(w)
    }
}

impl Decode for Gathering {
    fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, DecodeError> {
        let crowd = Crowd::decode(r)?;
        let participators: Vec<ObjectId> = Vec::decode(r)?;
        Ok(Gathering::from_parts(crowd, participators))
    }
}

impl Encode for CrowdRecord {
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        self.crowd.encode(w)?;
        self.gatherings.encode(w)
    }
}

impl Decode for CrowdRecord {
    fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, DecodeError> {
        let crowd = Crowd::decode(r)?;
        let gatherings: Vec<Gathering> = Vec::decode(r)?;
        Ok(CrowdRecord { crowd, gatherings })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode_from_slice, encode_to_vec};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: &T) {
        let bytes = encode_to_vec(value);
        let back: T = decode_from_slice(&bytes).expect("roundtrip decodes");
        assert_eq!(&back, value);
    }

    /// Decoding any strict prefix must fail with a clean error, never panic.
    fn assert_truncations_fail<T: Encode + Decode + std::fmt::Debug>(value: &T) {
        let bytes = encode_to_vec(value);
        for cut in 0..bytes.len() {
            let err =
                decode_from_slice::<T>(&bytes[..cut]).expect_err("truncated input must not decode");
            assert!(
                matches!(err, DecodeError::UnexpectedEof | DecodeError::Corrupt(_)),
                "cut at {cut}: unexpected error {err:?}"
            );
        }
    }

    fn random_point(rng: &mut StdRng) -> Point {
        Point::new(rng.gen_range(-1e6..1e6), rng.gen_range(-1e6..1e6))
    }

    fn random_cluster(rng: &mut StdRng, time: u32) -> SnapshotCluster {
        let n = rng.gen_range(1..8usize);
        let mut members: Vec<ObjectId> = Vec::with_capacity(n);
        while members.len() < n {
            let id = ObjectId::new(rng.gen_range(0u32..500));
            if !members.contains(&id) {
                members.push(id);
            }
        }
        let points: Vec<Point> = (0..n).map(|_| random_point(rng)).collect();
        SnapshotCluster::new(time, members, points)
    }

    fn random_cdb(rng: &mut StdRng) -> ClusterDatabase {
        let start = rng.gen_range(0u32..50);
        let ticks = rng.gen_range(1u32..8);
        let sets: Vec<SnapshotClusterSet> = (start..start + ticks)
            .map(|t| {
                let clusters = (0..rng.gen_range(0usize..4))
                    .map(|_| random_cluster(rng, t))
                    .collect();
                SnapshotClusterSet { time: t, clusters }
            })
            .collect();
        ClusterDatabase::from_sets(sets)
    }

    fn random_crowd(rng: &mut StdRng) -> Crowd {
        let start = rng.gen_range(0u32..100);
        let len = rng.gen_range(1u32..10);
        Crowd::new(
            (start..start + len)
                .map(|t| ClusterId::new(t, rng.gen_range(0usize..5)))
                .collect(),
        )
    }

    fn random_gathering(rng: &mut StdRng) -> Gathering {
        let participators: Vec<ObjectId> = (0..rng.gen_range(0usize..12))
            .map(|_| ObjectId::new(rng.gen_range(0u32..300)))
            .collect();
        Gathering::from_parts(random_crowd(rng), participators)
    }

    fn random_trajectory(rng: &mut StdRng) -> Trajectory {
        let n = rng.gen_range(1usize..20);
        let mut time = rng.gen_range(0u32..10);
        let samples: Vec<Sample> = (0..n)
            .map(|_| {
                let s = Sample::new(time, random_point(rng));
                time += rng.gen_range(1u32..5);
                s
            })
            .collect();
        Trajectory::new(ObjectId::new(rng.gen_range(0u32..100)), samples)
    }

    #[test]
    fn geometry_and_id_roundtrips() {
        let mut rng = StdRng::seed_from_u64(0xA1);
        for _ in 0..128 {
            roundtrip(&random_point(&mut rng));
            let a = random_point(&mut rng);
            let b = random_point(&mut rng);
            roundtrip(&Mbr::new(
                a.x.min(b.x),
                a.y.min(b.y),
                a.x.max(b.x),
                a.y.max(b.y),
            ));
            roundtrip(&ObjectId::new(rng.gen_range(0u32..u32::MAX)));
            let t1 = rng.gen_range(0u32..1000);
            let t2 = rng.gen_range(0u32..1000);
            roundtrip(&TimeInterval::new(t1.min(t2), t1.max(t2)));
            roundtrip(&ClusterId::new(
                rng.gen_range(0u32..1000),
                rng.gen_range(0usize..64),
            ));
        }
    }

    #[test]
    fn trajectory_roundtrips() {
        let mut rng = StdRng::seed_from_u64(0xA2);
        for _ in 0..64 {
            roundtrip(&random_trajectory(&mut rng));
        }
        let db = TrajectoryDatabase::from_trajectories((0..5).map(|_| random_trajectory(&mut rng)));
        let bytes = encode_to_vec(&db);
        let back: TrajectoryDatabase = decode_from_slice(&bytes).unwrap();
        assert_eq!(back.len(), db.len());
        for (a, b) in back.iter().zip(db.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn cluster_roundtrips() {
        let mut rng = StdRng::seed_from_u64(0xA3);
        for _ in 0..64 {
            let time = rng.gen_range(0u32..100);
            roundtrip(&random_cluster(&mut rng, time));
            let cdb = random_cdb(&mut rng);
            let bytes = encode_to_vec(&cdb);
            let back: ClusterDatabase = decode_from_slice(&bytes).unwrap();
            assert_eq!(back.time_domain(), cdb.time_domain());
            for (a, b) in back.iter().zip(cdb.iter()) {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn pattern_roundtrips() {
        let mut rng = StdRng::seed_from_u64(0xA4);
        for _ in 0..64 {
            roundtrip(&random_crowd(&mut rng));
            roundtrip(&random_gathering(&mut rng));
            let record = CrowdRecord {
                crowd: random_crowd(&mut rng),
                gatherings: (0..rng.gen_range(0usize..4))
                    .map(|_| random_gathering(&mut rng))
                    .collect(),
            };
            let bytes = encode_to_vec(&record);
            let back: CrowdRecord = decode_from_slice(&bytes).unwrap();
            assert_eq!(back.crowd, record.crowd);
            assert_eq!(back.gatherings, record.gatherings);
        }
    }

    #[test]
    fn params_roundtrips() {
        roundtrip(&ClusteringParams::paper_default());
        roundtrip(&CrowdParams::paper_default());
        roundtrip(&GatheringParams::paper_default());
        roundtrip(&GatheringConfig::paper_default());
        for strategy in RangeSearchStrategy::ALL {
            roundtrip(&strategy);
        }
        for variant in TadVariant::ALL {
            roundtrip(&variant);
        }
    }

    #[test]
    fn truncated_domain_values_fail_cleanly() {
        let mut rng = StdRng::seed_from_u64(0xA5);
        assert_truncations_fail(&random_cluster(&mut rng, 7));
        assert_truncations_fail(&random_crowd(&mut rng));
        assert_truncations_fail(&random_gathering(&mut rng));
        assert_truncations_fail(&random_trajectory(&mut rng));
        assert_truncations_fail(&GatheringConfig::paper_default());
        assert_truncations_fail(&random_cdb(&mut rng));
    }

    #[test]
    fn corrupt_domain_values_are_rejected() {
        // Reversed interval.
        let mut bytes = Vec::new();
        9u32.encode(&mut bytes).unwrap();
        3u32.encode(&mut bytes).unwrap();
        assert!(matches!(
            decode_from_slice::<TimeInterval>(&bytes),
            Err(DecodeError::Corrupt(_))
        ));

        // Empty crowd.
        let bytes = encode_to_vec(&Vec::<ClusterId>::new());
        assert!(matches!(
            decode_from_slice::<Crowd>(&bytes),
            Err(DecodeError::Corrupt(_))
        ));

        // Crowd with a time gap.
        let bytes = encode_to_vec(&vec![ClusterId::new(0, 0), ClusterId::new(2, 0)]);
        assert!(matches!(
            decode_from_slice::<Crowd>(&bytes),
            Err(DecodeError::Corrupt(_))
        ));

        // Unknown enum tags.
        assert!(matches!(
            decode_from_slice::<RangeSearchStrategy>(&[9]),
            Err(DecodeError::Corrupt(_))
        ));
        assert!(matches!(
            decode_from_slice::<TadVariant>(&[9]),
            Err(DecodeError::Corrupt(_))
        ));

        // Cluster member/point length mismatch.
        let mut bytes = Vec::new();
        0u32.encode(&mut bytes).unwrap();
        vec![ObjectId::new(1), ObjectId::new(2)]
            .encode(&mut bytes)
            .unwrap();
        vec![Point::new(0.0, 0.0)].encode(&mut bytes).unwrap();
        assert!(matches!(
            decode_from_slice::<SnapshotCluster>(&bytes),
            Err(DecodeError::Corrupt(_))
        ));

        // Non-contiguous cluster database.
        let mut rng = StdRng::seed_from_u64(0xA6);
        let sets = vec![
            SnapshotClusterSet {
                time: 0,
                clusters: vec![random_cluster(&mut rng, 0)],
            },
            SnapshotClusterSet {
                time: 2,
                clusters: vec![random_cluster(&mut rng, 2)],
            },
        ];
        let bytes = encode_to_vec(&sets);
        assert!(matches!(
            decode_from_slice::<ClusterDatabase>(&bytes),
            Err(DecodeError::Corrupt(_))
        ));

        // Inconsistent configuration (kp > kc).
        let mut bytes = Vec::new();
        ClusteringParams::paper_default()
            .encode(&mut bytes)
            .unwrap();
        CrowdParams::new(15, 5, 300.0).encode(&mut bytes).unwrap();
        GatheringParams::new(10, 15).encode(&mut bytes).unwrap();
        assert!(matches!(
            decode_from_slice::<GatheringConfig>(&bytes),
            Err(DecodeError::Corrupt(_))
        ));

        // Non-finite point.
        let mut bytes = Vec::new();
        f64::NAN.encode(&mut bytes).unwrap();
        0.0f64.encode(&mut bytes).unwrap();
        assert!(matches!(
            decode_from_slice::<Point>(&bytes),
            Err(DecodeError::Corrupt(_))
        ));
    }

    #[test]
    fn columnar_set_decode_rebuilds_one_shared_arena() {
        let mut rng = StdRng::seed_from_u64(0xA7);
        let clusters: Vec<SnapshotCluster> = (0..4).map(|_| random_cluster(&mut rng, 3)).collect();
        let set = SnapshotClusterSet { time: 3, clusters };
        let back: SnapshotClusterSet = decode_from_slice(&encode_to_vec(&set)).unwrap();
        assert_eq!(back.time, set.time);
        assert_eq!(back.clusters, set.clusters);
        // The decoded clusters must live back to back in a single tick
        // arena: each cluster's coordinate slice starts exactly where the
        // previous one ends.
        for pair in back.clusters.windows(2) {
            let (a, b) = (pair[0].points(), pair[1].points());
            assert_eq!(a.xs().as_ptr_range().end, b.xs().as_ptr_range().start);
            assert_eq!(a.ys().as_ptr_range().end, b.ys().as_ptr_range().start);
        }
    }

    #[test]
    fn v1_cluster_frames_decode_to_the_same_database() {
        let mut rng = StdRng::seed_from_u64(0xA8);
        for _ in 0..32 {
            let cdb = random_cdb(&mut rng);
            let mut v1 = Vec::new();
            encode_cluster_database_v1(&cdb, &mut v1).unwrap();
            let back = decode_cluster_database_v1(&mut v1.as_slice()).unwrap();
            assert_eq!(back.time_domain(), cdb.time_domain());
            for (a, b) in back.iter().zip(cdb.iter()) {
                assert_eq!(a, b);
            }
            // And the legacy bytes really differ from the columnar frame
            // whenever the database holds a multi-point cluster (the layouts
            // only coincide on trivial content).
            let v2 = encode_to_vec(&cdb);
            if cdb.iter().any(|s| s.clusters.len() > 1) {
                assert_ne!(v1, v2);
            }
        }
    }

    #[test]
    fn corrupt_columnar_set_frames_are_rejected() {
        // A zero cluster length.
        let mut bytes = Vec::new();
        7u32.encode(&mut bytes).unwrap();
        1usize.encode(&mut bytes).unwrap();
        0usize.encode(&mut bytes).unwrap();
        assert!(matches!(
            decode_from_slice::<SnapshotClusterSet>(&bytes),
            Err(DecodeError::Corrupt("empty snapshot cluster"))
        ));

        // A non-finite coordinate in the x column.
        let mut bytes = Vec::new();
        7u32.encode(&mut bytes).unwrap();
        1usize.encode(&mut bytes).unwrap();
        1usize.encode(&mut bytes).unwrap();
        ObjectId::new(1).encode(&mut bytes).unwrap();
        f64::INFINITY.encode(&mut bytes).unwrap();
        0.0f64.encode(&mut bytes).unwrap();
        assert!(matches!(
            decode_from_slice::<SnapshotClusterSet>(&bytes),
            Err(DecodeError::Corrupt("non-finite point coordinate"))
        ));

        // Cluster lengths whose sum overflows the u32 arena range.
        let mut bytes = Vec::new();
        7u32.encode(&mut bytes).unwrap();
        2usize.encode(&mut bytes).unwrap();
        (u32::MAX as usize).encode(&mut bytes).unwrap();
        (u32::MAX as usize).encode(&mut bytes).unwrap();
        assert!(matches!(
            decode_from_slice::<SnapshotClusterSet>(&bytes),
            Err(DecodeError::Corrupt("cluster arena length overflows"))
        ));
    }
}
