//! Pluggable storage backend: a minimal virtual filesystem trait with a
//! real-filesystem implementation and a deterministic fault-injecting
//! in-memory implementation.
//!
//! Everything [`crate::PatternStore`] and the checkpoint helpers touch on
//! disk goes through a [`Vfs`], so the exact same store code can run against
//! the real filesystem ([`RealVfs`]) or against a seeded [`FaultVfs`] that
//! injects short writes, torn frames at byte granularity, fsync failures,
//! `ENOSPC`, and whole-process crash points (dropping everything that was
//! never fsynced).  Fault schedules are pure functions of the seed and the
//! operation count, so every failure a test finds is replayable.
//!
//! The surface is intentionally tiny — append-oriented, no random-access
//! writes — because that is all an append-only segment log and
//! atomic-rename checkpoint files need.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// A writable file handle produced by a [`Vfs`].
///
/// Handles are append-only: bytes go at the end of the file, and [`sync`]
/// makes everything written so far durable (survive a [`FaultVfs`] crash).
///
/// [`sync`]: VfsFile::sync
pub trait VfsFile: Write + Send + Sync + fmt::Debug {
    /// Flushes and makes all bytes written so far durable.
    fn sync(&mut self) -> io::Result<()>;
}

/// The storage backend the pattern store and checkpoint I/O run against.
///
/// Paths are interpreted by the backend: [`RealVfs`] hands them to the OS,
/// [`FaultVfs`] keys an in-memory map with them.
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Creates `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Lists the *file names* (not full paths) of regular files in `dir`.
    fn list_dir(&self, dir: &Path) -> io::Result<Vec<String>>;
    /// Reads a whole file.
    fn read_file(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// The current length of the file at `path`.
    fn file_len(&self, path: &Path) -> io::Result<u64>;
    /// Truncates the file at `path` to `len` bytes.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Creates a new file, failing if it already exists.
    fn create_new(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Opens an existing file for appending (creating it if missing).
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Atomically replaces `to` with `from`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file; missing files are an error.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Whether a file exists at `path`.
    fn exists(&self, path: &Path) -> bool;
}

/// The real filesystem: every method maps directly onto `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealVfs;

#[derive(Debug)]
struct RealFile(std::fs::File);

impl Write for RealFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let written = self.0.write(buf)?;
        record_write(written);
        Ok(written)
    }
    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()
    }
}

impl VfsFile for RealFile {
    fn sync(&mut self) -> io::Result<()> {
        if gpdt_obs::enabled() {
            let (result, nanos) = gpdt_obs::time_nanos(|| self.0.sync_all());
            result?;
            record_sync(nanos);
        } else {
            self.0.sync_all()?;
        }
        Ok(())
    }
}

/// Registry taps shared by every [`Vfs`] implementation: each successful
/// write/sync bumps process-wide `vfs.*` counters.  Only completed operations
/// count, so the numbers mean "data that actually reached the file layer".
fn record_write(bytes: usize) {
    if gpdt_obs::enabled() {
        gpdt_obs::counter!("vfs.write").inc();
        gpdt_obs::counter!("vfs.bytes_written").add(bytes as u64);
    }
}

fn record_sync(nanos: u64) {
    if gpdt_obs::enabled() {
        gpdt_obs::counter!("vfs.fsync").inc();
        // The latency histogram behind the watchdog's fsync-p99 rule.  The
        // timing happens outside the fault plan, so it never perturbs the
        // RNG draw sequence.
        gpdt_obs::histogram!("vfs.fsync.nanos").record(nanos);
    }
}

/// One injected fault fired: bumps the aggregate `vfs.fault.injected`
/// counter, a per-kind counter, and journals the kind to the flight
/// recorder.  Never touches the fault plan's RNG, so instrumented and
/// uninstrumented runs see identical fault schedules.
fn record_fault(kind: &'static str) {
    if gpdt_obs::enabled() {
        gpdt_obs::counter!("vfs.fault.injected").inc();
        gpdt_obs::registry().counter(kind).inc();
        gpdt_obs::record_event(kind, None, "injected by FaultVfs plan");
    }
}

impl Vfs for RealVfs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                if let Ok(name) = entry.file_name().into_string() {
                    names.push(name);
                }
            }
        }
        Ok(names)
    }

    fn read_file(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let file = std::fs::OpenOptions::new().write(true).open(path)?;
        file.set_len(len)
    }

    fn create_new(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)?;
        Ok(Box::new(RealFile(file)))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(path)?;
        Ok(Box::new(RealFile(file)))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// What faults a [`FaultVfs`] injects, beyond the explicit kill point.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultPlan {
    /// Kill the backend at exactly this mutating-operation count.
    pub kill_at: Option<u64>,
    /// After a [`FaultVfs::crash_recover`], re-arm the kill this many
    /// mutating operations later (a repeating crash schedule).
    pub kill_every: Option<u64>,
    /// Fail roughly one in N writes with a transient
    /// [`io::ErrorKind::TimedOut`] error that leaves the file untouched
    /// (`Interrupted` would be swallowed by std's `write_all` retry loop).
    pub transient_write_one_in: Option<u64>,
    /// Fail roughly one in N syncs with a transient error; the data stays
    /// written but not durable.
    pub transient_sync_one_in: Option<u64>,
    /// Total byte capacity across all files; writes that would exceed it
    /// fail with `ENOSPC`.
    pub capacity: Option<usize>,
}

/// One in-memory file: the volatile contents plus how much of it has been
/// made durable by an fsync.
#[derive(Debug, Default, Clone)]
struct MemFile {
    data: Vec<u8>,
    durable_len: usize,
}

#[derive(Debug)]
struct FaultState {
    files: BTreeMap<PathBuf, MemFile>,
    dirs: BTreeSet<PathBuf>,
    plan: FaultPlan,
    rng: u64,
    /// Count of mutating operations performed so far.
    ops: u64,
    killed: bool,
}

impl FaultState {
    fn next_rand(&mut self) -> u64 {
        // xorshift64: deterministic, seed-stable across platforms.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    fn dead(&self) -> io::Result<()> {
        if self.killed {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "storage backend crashed (injected kill point)",
            ));
        }
        Ok(())
    }

    /// Counts one mutating operation; returns an error exactly at the
    /// planned kill point (marking the backend dead).
    fn mutate(&mut self) -> io::Result<()> {
        self.dead()?;
        self.ops += 1;
        if self.plan.kill_at == Some(self.ops) {
            self.killed = true;
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "storage backend crashed (injected kill point)",
            ));
        }
        Ok(())
    }

    fn total_bytes(&self) -> usize {
        self.files.values().map(|f| f.data.len()).sum()
    }
}

/// A deterministic fault-injecting in-memory filesystem.
///
/// Cloning shares the underlying state, so the store, the checkpoint writer
/// and the test driver all observe the same files and the same fault
/// schedule.
///
/// The durability model is that of a journalling filesystem with cheap
/// metadata commits: file creation, rename and removal take effect
/// immediately, while file *contents* beyond the last [`VfsFile::sync`] are
/// volatile.  A crash (the planned kill point) makes every subsequent
/// operation fail; [`crash_recover`] then simulates the reboot — each file
/// keeps its durable prefix plus a seeded-random slice of the un-synced
/// tail, which is exactly how torn frames at byte granularity arise.
///
/// [`crash_recover`]: FaultVfs::crash_recover
#[derive(Debug, Clone)]
pub struct FaultVfs {
    state: Arc<Mutex<FaultState>>,
}

impl FaultVfs {
    /// A fault VFS with the given seed and no faults planned.
    pub fn new(seed: u64) -> Self {
        Self::with_plan(seed, FaultPlan::default())
    }

    /// A fault VFS with an explicit fault plan.
    pub fn with_plan(seed: u64, plan: FaultPlan) -> Self {
        FaultVfs {
            state: Arc::new(Mutex::new(FaultState {
                files: BTreeMap::new(),
                dirs: BTreeSet::new(),
                plan,
                // A zero seed would pin xorshift at zero forever.
                rng: seed | 1,
                ops: 0,
                killed: false,
            })),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultState> {
        self.state.lock().expect("fault vfs state poisoned")
    }

    /// Mutating operations performed so far (used to size kill-point sweeps).
    pub fn ops(&self) -> u64 {
        self.lock().ops
    }

    /// Whether the planned kill point has fired.
    pub fn killed(&self) -> bool {
        self.lock().killed
    }

    /// Arms (or re-arms) a kill at `ops() + n` mutating operations.
    pub fn kill_after(&self, n: u64) {
        let mut s = self.lock();
        s.plan.kill_at = Some(s.ops + n);
    }

    /// Simulates the post-crash reboot: every file keeps its durable prefix
    /// plus a seeded-random number of bytes from the un-synced tail (torn
    /// writes at byte granularity), everything surviving becomes durable,
    /// and the backend comes back to life.
    ///
    /// If the plan sets `kill_every`, the next kill is re-armed that many
    /// operations out.
    pub fn crash_recover(&self) {
        let mut s = self.lock();
        let FaultState { files, rng, .. } = &mut *s;
        for file in files.values_mut() {
            let tail = file.data.len() - file.durable_len;
            if tail > 0 {
                // Keep 0..=tail bytes of the volatile suffix.
                let mut x = *rng;
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *rng = x;
                let keep = (x as usize) % (tail + 1);
                file.data.truncate(file.durable_len + keep);
            }
            file.durable_len = file.data.len();
        }
        s.killed = false;
        s.plan.kill_at = s.plan.kill_every.map(|n| s.ops + n.max(1));
        if gpdt_obs::enabled() {
            gpdt_obs::record_event(
                "vfs.crash_recover",
                None,
                format!("rebooted after {} mutating ops", s.ops),
            );
        }
    }

    /// Drops every planned fault (the backend becomes reliable), without
    /// touching file contents.
    pub fn clear_faults(&self) {
        let mut s = self.lock();
        s.plan = FaultPlan::default();
        s.killed = false;
    }

    /// Replaces the fault plan mid-flight (file contents untouched), so a
    /// test can let a store open healthily and then turn the weather bad.
    pub fn set_plan(&self, plan: FaultPlan) {
        self.lock().plan = plan;
    }
}

/// A write handle into a [`FaultVfs`] file.
#[derive(Debug)]
struct FaultFile {
    state: Arc<Mutex<FaultState>>,
    path: PathBuf,
}

impl Write for FaultFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut s = self.state.lock().expect("fault vfs state poisoned");
        s.dead()?;
        // Transient failure: nothing written, safe to retry.
        if let Some(n) = s.plan.transient_write_one_in {
            if n > 0 && s.next_rand().is_multiple_of(n) {
                record_fault("vfs.fault.transient_write");
                // `TimedOut` rather than `Interrupted`: std's `write_all`
                // and `BufWriter` auto-retry `Interrupted`, which would hide
                // the fault from the caller entirely.
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "transient write failure (injected)",
                ));
            }
        }
        // ENOSPC: partial progress up to the capacity, then a hard error.
        let mut len = buf.len();
        if let Some(cap) = s.plan.capacity {
            let used = s.total_bytes();
            let room = cap.saturating_sub(used);
            if room == 0 {
                record_fault("vfs.fault.enospc");
                return Err(io::Error::from_raw_os_error(28)); // ENOSPC
            }
            len = len.min(room);
        }
        if let Err(e) = s.mutate() {
            record_fault("vfs.fault.kill");
            // The kill point tears this very write: a seeded prefix lands in
            // the volatile file contents even though the caller sees an
            // error.  (Without this, kills could only land on frame
            // boundaries and torn-tail repair would go untested.)
            let keep = (s.next_rand() as usize) % (buf.len() + 1);
            if keep > 0 {
                s.files
                    .entry(self.path.clone())
                    .or_default()
                    .data
                    .extend_from_slice(&buf[..keep]);
            }
            return Err(e);
        }
        let file = s.files.entry(self.path.clone()).or_default();
        file.data.extend_from_slice(&buf[..len]);
        record_write(len);
        Ok(len)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.state.lock().expect("fault vfs state poisoned").dead()
    }
}

impl VfsFile for FaultFile {
    fn sync(&mut self) -> io::Result<()> {
        let start = gpdt_obs::enabled().then(std::time::Instant::now);
        let mut s = self.state.lock().expect("fault vfs state poisoned");
        if let Some(n) = s.plan.transient_sync_one_in {
            if n > 0 && s.next_rand().is_multiple_of(n) {
                record_fault("vfs.fault.transient_sync");
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "transient fsync failure (injected)",
                ));
            }
        }
        s.mutate()?;
        if let Some(file) = s.files.get_mut(&self.path) {
            file.durable_len = file.data.len();
        }
        record_sync(start.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0));
        Ok(())
    }
}

impl Vfs for FaultVfs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        let mut s = self.lock();
        s.mutate()?;
        s.dirs.insert(dir.to_path_buf());
        Ok(())
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<String>> {
        let s = self.lock();
        s.dead()?;
        if !s.dirs.contains(dir) && !s.files.keys().any(|p| p.parent() == Some(dir)) {
            return Err(io::Error::new(io::ErrorKind::NotFound, "no such directory"));
        }
        Ok(s.files
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .filter_map(|p| p.file_name())
            .filter_map(|n| n.to_str().map(str::to_owned))
            .collect())
    }

    fn read_file(&self, path: &Path) -> io::Result<Vec<u8>> {
        let s = self.lock();
        s.dead()?;
        s.files
            .get(path)
            .map(|f| f.data.clone())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        let s = self.lock();
        s.dead()?;
        s.files
            .get(path)
            .map(|f| f.data.len() as u64)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let mut s = self.lock();
        s.mutate()?;
        let file = s
            .files
            .get_mut(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))?;
        file.data.truncate(len as usize);
        file.durable_len = file.durable_len.min(file.data.len());
        Ok(())
    }

    fn create_new(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let mut s = self.lock();
        s.mutate()?;
        if s.files.contains_key(path) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "file already exists",
            ));
        }
        s.files.insert(path.to_path_buf(), MemFile::default());
        Ok(Box::new(FaultFile {
            state: Arc::clone(&self.state),
            path: path.to_path_buf(),
        }))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let mut s = self.lock();
        s.dead()?;
        s.files.entry(path.to_path_buf()).or_default();
        Ok(Box::new(FaultFile {
            state: Arc::clone(&self.state),
            path: path.to_path_buf(),
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut s = self.lock();
        s.mutate()?;
        let file = s
            .files
            .remove(from)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))?;
        s.files.insert(to.to_path_buf(), file);
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut s = self.lock();
        s.mutate()?;
        s.files
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))
    }

    fn exists(&self, path: &Path) -> bool {
        self.lock().files.contains_key(path)
    }
}

/// Atomically replaces the file at `path` with `bytes`: write to a
/// temporary sibling, sync, then rename over the target.
///
/// A crash at any point leaves either the old contents or the new contents
/// at `path`, never a torn mix — the property the checkpoint files rely on.
pub fn write_file_atomic(vfs: &dyn Vfs, path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    if vfs.exists(&tmp) {
        vfs.remove_file(&tmp)?;
    }
    let mut file = vfs.create_new(&tmp)?;
    file.write_all(bytes)?;
    file.flush()?;
    file.sync()?;
    drop(file);
    vfs.rename(&tmp, path)
}

/// Reads a whole file, mapping "not found" to `None` and every other error
/// through.
pub fn read_file_opt(vfs: &dyn Vfs, path: &Path) -> io::Result<Option<Vec<u8>>> {
    match vfs.read_file(path) {
        Ok(bytes) => Ok(Some(bytes)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_vfs_round_trips_files() {
        let dir = std::env::temp_dir().join(format!("gpdt-vfs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let vfs = RealVfs;
        vfs.create_dir_all(&dir).unwrap();
        let path = dir.join("a.bin");
        let mut f = vfs.create_new(&path).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync().unwrap();
        drop(f);
        assert_eq!(vfs.read_file(&path).unwrap(), b"hello");
        assert_eq!(vfs.file_len(&path).unwrap(), 5);
        let mut f = vfs.open_append(&path).unwrap();
        f.write_all(b" world").unwrap();
        f.flush().unwrap();
        drop(f);
        assert_eq!(vfs.read_file(&path).unwrap(), b"hello world");
        vfs.truncate(&path, 5).unwrap();
        assert_eq!(vfs.read_file(&path).unwrap(), b"hello");
        assert_eq!(vfs.list_dir(&dir).unwrap(), vec!["a.bin".to_string()]);
        let moved = dir.join("b.bin");
        vfs.rename(&path, &moved).unwrap();
        assert!(!vfs.exists(&path));
        assert!(vfs.exists(&moved));
        vfs.remove_file(&moved).unwrap();
        assert!(vfs.list_dir(&dir).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_vfs_mirrors_the_real_semantics_when_healthy() {
        let vfs = FaultVfs::new(7);
        let dir = Path::new("/store");
        vfs.create_dir_all(dir).unwrap();
        let path = dir.join("a.bin");
        let mut f = vfs.create_new(&path).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync().unwrap();
        drop(f);
        assert!(
            vfs.create_new(&path).is_err(),
            "create_new must not clobber"
        );
        let mut f = vfs.open_append(&path).unwrap();
        f.write_all(b" world").unwrap();
        drop(f);
        assert_eq!(vfs.read_file(&path).unwrap(), b"hello world");
        vfs.truncate(&path, 5).unwrap();
        assert_eq!(vfs.file_len(&path).unwrap(), 5);
        assert_eq!(vfs.list_dir(dir).unwrap(), vec!["a.bin".to_string()]);
        assert!(vfs.list_dir(Path::new("/missing")).is_err());
    }

    #[test]
    fn crash_drops_unsynced_bytes_but_never_durable_ones() {
        let vfs = FaultVfs::new(42);
        let path = Path::new("/store/a.bin");
        vfs.create_dir_all(Path::new("/store")).unwrap();
        let mut f = vfs.create_new(path).unwrap();
        f.write_all(b"durable").unwrap();
        f.sync().unwrap();
        f.write_all(b" volatile tail").unwrap();
        drop(f);
        // Arm a kill at the next mutating operation.
        vfs.kill_after(1);
        let mut f = vfs.open_append(path).unwrap();
        assert!(f.write_all(b"x").is_err(), "the armed kill must fire");
        assert!(vfs.killed());
        assert!(vfs.read_file(path).is_err(), "dead backends fail reads too");
        vfs.crash_recover();
        let data = vfs.read_file(path).unwrap();
        assert!(data.starts_with(b"durable"), "durable prefix must survive");
        assert!(
            data.len() <= b"durable volatile tailx".len(),
            "recovery never invents bytes"
        );
    }

    #[test]
    fn torn_tails_vary_with_the_seed() {
        let lens: Vec<usize> = (0..16)
            .map(|seed| {
                let vfs = FaultVfs::new(seed);
                let path = Path::new("/f");
                let mut f = vfs.create_new(path).unwrap();
                f.write_all(b"synced").unwrap();
                f.sync().unwrap();
                f.write_all(&[0xAB; 64]).unwrap();
                drop(f);
                vfs.kill_after(1);
                let _ = vfs.remove_file(Path::new("/nonexistent"));
                vfs.crash_recover();
                vfs.file_len(path).unwrap() as usize
            })
            .collect();
        assert!(lens.iter().all(|&l| (6..=70).contains(&l)));
        assert!(
            lens.iter().collect::<std::collections::BTreeSet<_>>().len() > 1,
            "different seeds must tear at different points: {lens:?}"
        );
    }

    #[test]
    fn capacity_produces_enospc() {
        let vfs = FaultVfs::with_plan(
            3,
            FaultPlan {
                capacity: Some(8),
                ..FaultPlan::default()
            },
        );
        let path = Path::new("/f");
        let mut f = vfs.create_new(path).unwrap();
        let err = f.write_all(&[0u8; 64]).unwrap_err();
        assert_eq!(err.raw_os_error(), Some(28), "must surface ENOSPC");
        assert_eq!(vfs.file_len(path).unwrap(), 8, "partial progress to cap");
    }

    #[test]
    fn transient_faults_are_timeouts_and_side_effect_free() {
        let vfs = FaultVfs::with_plan(
            9,
            FaultPlan {
                transient_write_one_in: Some(2),
                ..FaultPlan::default()
            },
        );
        let path = Path::new("/f");
        let mut f = vfs.create_new(path).unwrap();
        let mut failures = 0;
        let mut written = 0u64;
        for _ in 0..64 {
            match f.write(b"abcd") {
                Ok(n) => written += n as u64,
                Err(e) => {
                    assert_eq!(e.kind(), io::ErrorKind::TimedOut);
                    failures += 1;
                }
            }
        }
        assert!(failures > 0, "a one-in-2 plan must fail sometimes");
        assert_eq!(vfs.file_len(path).unwrap(), written);
    }

    #[test]
    fn atomic_write_is_old_or_new_across_crashes() {
        for kill in 1..8u64 {
            let vfs = FaultVfs::new(1000 + kill);
            let path = Path::new("/ckpt");
            write_file_atomic(&vfs, path, b"old-contents").unwrap();
            vfs.kill_after(kill);
            let _ = write_file_atomic(&vfs, path, b"new-contents!");
            vfs.crash_recover();
            let got = read_file_opt(&vfs, path).unwrap().unwrap_or_default();
            assert!(
                got == b"old-contents" || got == b"new-contents!",
                "kill {kill}: checkpoint file torn: {got:?}"
            );
        }
    }

    #[test]
    fn fault_schedules_are_deterministic() {
        let run = || {
            let vfs = FaultVfs::new(77);
            let path = Path::new("/f");
            let mut f = vfs.create_new(path).unwrap();
            f.write_all(b"synced").unwrap();
            f.sync().unwrap();
            f.write_all(&[7; 100]).unwrap();
            drop(f);
            vfs.kill_after(1);
            let _ = vfs.create_dir_all(Path::new("/d"));
            vfs.crash_recover();
            vfs.read_file(path).unwrap()
        };
        assert_eq!(run(), run());
    }
}
