//! The durable pattern store: an append-only segment log of finalized crowd
//! records with in-memory query indexes.
//!
//! # On-disk format
//!
//! A store is a directory of numbered segment files (`seg-00000001.gpdt`,
//! `seg-00000002.gpdt`, ...).  Each segment starts with an 8-byte magic
//! string and a `u16` format version, followed by a sequence of framed
//! records:
//!
//! ```text
//! ┌─────────────┬───────────────────┬──────────────────┐
//! │ u32 length  │ payload (length)  │ u64 FNV-1a sum   │
//! └─────────────┴───────────────────┴──────────────────┘
//! ```
//!
//! The payload is one [`PatternRecord`] in the [`crate::codec`] format.  The
//! log is append-only: records are never rewritten, and a new segment is
//! started once the active one exceeds
//! [`StoreOptions::max_segment_bytes`].  On [`PatternStore::open`] every
//! segment is replayed to rebuild the in-memory state; a torn tail in the
//! *last* segment (the crash-during-append case) is truncated away, while
//! damage anywhere else is reported as an error.
//!
//! # Query indexes
//!
//! Replay (and every append) maintains three in-memory indexes:
//!
//! * an **interval index** over crowd lifespans, answering "which records
//!   were active during `[t1, t2]`";
//! * an **R-tree** (reusing [`gpdt_index::RTree`]) over crowd MBRs, answering
//!   "which records touched region `R`";
//! * a **participation index** mapping each object to the gatherings it
//!   participated in.
//!
//! [`PatternStore::query_gatherings`] combines the first two for the
//! region × time-window query of the ROADMAP's monitoring story;
//! [`PatternStore::object_history`] and [`PatternStore::top_k_gatherings`]
//! serve the per-object and ranking paths.

use std::collections::HashMap;
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use gpdt_clustering::ClusterDatabase;
use gpdt_core::{Crowd, CrowdRecord, GatheringEngine};
use gpdt_geo::Mbr;
use gpdt_index::rtree::Entry;
use gpdt_index::RTree;
use gpdt_trajectory::{ObjectId, TimeInterval, Timestamp};

use crate::codec::{
    decode_from_slice, encode_to_vec, fnv1a, read_header, write_header, Decode, DecodeError, Encode,
};
use crate::vfs::{RealVfs, Vfs, VfsFile};

/// Magic string at the start of every segment file.
pub const SEGMENT_MAGIC: [u8; 8] = *b"GPDTSEG\0";

/// Current segment format version.
pub const SEGMENT_VERSION: u16 = 1;

/// Number of bytes of a segment header.
const SEGMENT_HEADER_BYTES: u64 = 10;

/// Identifier of a record within a store: its zero-based append position.
pub type RecordId = usize;

/// One gathering as stored: its lifespan, bounding rectangle and
/// participator set.
///
/// Unlike the in-engine [`gpdt_core::Gathering`], the stored form carries its
/// own geometry — the store outlives the engine's cluster database, so
/// region queries cannot chase [`gpdt_clustering::ClusterId`] references.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredGathering {
    /// The gathering's lifespan.
    pub interval: TimeInterval,
    /// Union of the MBRs of the gathering's snapshot clusters.
    pub mbr: Mbr,
    /// The participators, sorted by object id.
    pub participators: Vec<ObjectId>,
}

/// One finalized crowd with its gatherings, in storable form: the crowd's
/// cluster references plus the denormalised geometry needed for queries.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternRecord {
    /// The closed crowd (cluster references, for traceability back into a
    /// cluster database).
    pub crowd: Crowd,
    /// Union of the MBRs of the crowd's snapshot clusters.
    pub mbr: Mbr,
    /// The closed gatherings detected within the crowd.
    pub gatherings: Vec<StoredGathering>,
}

impl PatternRecord {
    /// Converts an engine [`CrowdRecord`] into storable form, resolving the
    /// cluster references against `cdb` to compute the crowd and gathering
    /// MBRs.
    ///
    /// # Panics
    ///
    /// Panics if the record references clusters missing from `cdb` (engine
    /// records always resolve against the engine's own database).
    pub fn from_crowd_record(record: &CrowdRecord, cdb: &ClusterDatabase) -> Self {
        let mbr = crowd_mbr(&record.crowd, cdb);
        let gatherings = record
            .gatherings
            .iter()
            .map(|g| StoredGathering {
                interval: g.crowd().interval(),
                mbr: crowd_mbr(g.crowd(), cdb),
                participators: g.participators().to_vec(),
            })
            .collect();
        PatternRecord {
            crowd: record.crowd.clone(),
            mbr,
            gatherings,
        }
    }

    /// The crowd's lifespan.
    pub fn interval(&self) -> TimeInterval {
        self.crowd.interval()
    }

    /// Checks the containment invariant the store's query indexes rely on:
    /// every gathering's MBR lies within the record's MBR, every gathering's
    /// lifespan lies within the crowd's, and participator lists are sorted.
    ///
    /// Records produced by [`PatternRecord::from_crowd_record`] satisfy this
    /// by construction (a gathering is a sub-crowd); hand-built records are
    /// checked by [`PatternStore::append`], because a gathering sticking out
    /// of its record's MBR would be invisible to the R-tree pruning of
    /// [`PatternStore::query_gatherings`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), &'static str> {
        let interval = self.crowd.interval();
        for gathering in &self.gatherings {
            if !self.mbr.contains_mbr(&gathering.mbr) {
                return Err("gathering MBR extends outside the record MBR");
            }
            if gathering.interval.start < interval.start || gathering.interval.end > interval.end {
                return Err("gathering lifespan extends outside the crowd lifespan");
            }
            if gathering.participators.windows(2).any(|w| w[0] > w[1]) {
                return Err("gathering participators are not sorted");
            }
        }
        Ok(())
    }
}

/// Union of the MBRs of a crowd's snapshot clusters.
fn crowd_mbr(crowd: &Crowd, cdb: &ClusterDatabase) -> Mbr {
    let mut ids = crowd.cluster_ids().iter();
    let first = ids.next().expect("crowds are non-empty");
    let mut mbr = *cdb
        .cluster(*first)
        .expect("crowd references a cluster missing from the database")
        .mbr();
    for id in ids {
        mbr.expand_to_mbr(
            cdb.cluster(*id)
                .expect("crowd references a cluster missing from the database")
                .mbr(),
        );
    }
    mbr
}

impl Encode for StoredGathering {
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        self.interval.encode(w)?;
        self.mbr.encode(w)?;
        self.participators.encode(w)
    }
}

impl Decode for StoredGathering {
    fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, DecodeError> {
        let interval = TimeInterval::decode(r)?;
        let mbr = Mbr::decode(r)?;
        let participators: Vec<ObjectId> = Vec::decode(r)?;
        Ok(StoredGathering {
            interval,
            mbr,
            participators,
        })
    }
}

impl Encode for PatternRecord {
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        self.crowd.encode(w)?;
        self.mbr.encode(w)?;
        self.gatherings.encode(w)
    }
}

impl Decode for PatternRecord {
    fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, DecodeError> {
        let crowd = Crowd::decode(r)?;
        let mbr = Mbr::decode(r)?;
        let gatherings: Vec<StoredGathering> = Vec::decode(r)?;
        Ok(PatternRecord {
            crowd,
            mbr,
            gatherings,
        })
    }
}

/// A query hit: one stored gathering together with the record it belongs to.
#[derive(Debug, Clone, PartialEq)]
pub struct GatheringHit {
    /// The record the gathering was stored under.
    pub record: RecordId,
    /// Position of the gathering within that record.
    pub index: usize,
    /// The gathering itself.
    pub gathering: StoredGathering,
}

/// Tuning knobs of a [`PatternStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreOptions {
    /// Segment rotation threshold: once the active segment reaches this many
    /// bytes, the next append starts a new segment.
    pub max_segment_bytes: u64,
    /// Accept an open that salvaged *zero* records from a non-empty torn
    /// segment (normally reported as [`StoreError::EmptySalvage`], because
    /// "the whole log decoded to nothing" usually means the wrong directory
    /// or wholesale corruption, not a routine crash).  Crash-recovery paths
    /// that *know* the store was empty at the crash — a restored checkpoint
    /// with zero finalized records — set this to proceed.
    pub allow_empty_salvage: bool,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            // Small enough that a long-running monitor produces several
            // segments (the compaction unit), large enough that a segment
            // amortises its header and file-system metadata.
            max_segment_bytes: 8 * 1024 * 1024,
            allow_empty_salvage: false,
        }
    }
}

/// Error opening, replaying or appending to a store.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O error while listing, opening, writing or truncating segments.
    Io(io::Error),
    /// A segment other than the last one is damaged (a torn tail in the last
    /// segment is repaired silently instead).
    Segment {
        /// The damaged segment file.
        path: PathBuf,
        /// What was wrong with it.
        source: DecodeError,
    },
    /// An appended record violates the containment invariant (see
    /// [`PatternRecord::validate`]) or exceeds the frame-size cap.  Always
    /// fatal for *this record* — retrying cannot help — but the store itself
    /// stays healthy.
    InvalidRecord(&'static str),
    /// Segment files exist but replay salvaged zero records while dropping a
    /// torn tail: indistinguishable from opening the wrong directory or from
    /// wholesale corruption, so it is reported instead of silently yielding
    /// an "empty" store.  Set [`StoreOptions::allow_empty_salvage`] when the
    /// empty result is known to be correct (e.g. restoring from a checkpoint
    /// taken before the first append was acknowledged).
    EmptySalvage {
        /// The torn segment the records would have lived in.
        segment: PathBuf,
        /// How many bytes of undecodable tail it carried.
        dropped_bytes: u64,
    },
}

impl StoreError {
    /// Whether retrying the failed operation can plausibly succeed.
    ///
    /// This is the single classification point the
    /// [`MonitorService`](crate::service::MonitorService) retry policy keys
    /// off: transient errors get bounded backoff-and-retry, fatal ones halt
    /// durable storage immediately.  Damage, invalid records and empty
    /// salvages are always fatal; I/O errors are fatal when the kind is
    /// structural (`NotFound`, `PermissionDenied`, `AlreadyExists`,
    /// `InvalidInput`, `InvalidData`, `Unsupported`, `UnexpectedEof`) or the
    /// OS reports `ENOSPC`, and transient otherwise (`Interrupted`,
    /// `TimedOut`, `WouldBlock`, unclassified OS errors).
    pub fn is_transient(&self) -> bool {
        match self {
            StoreError::Io(err) => {
                // A full disk reports a generic kind on some platforms; the
                // raw errno is the reliable signal.
                if err.raw_os_error() == Some(28) {
                    return false;
                }
                !matches!(
                    err.kind(),
                    io::ErrorKind::NotFound
                        | io::ErrorKind::PermissionDenied
                        | io::ErrorKind::AlreadyExists
                        | io::ErrorKind::InvalidInput
                        | io::ErrorKind::InvalidData
                        | io::ErrorKind::Unsupported
                        | io::ErrorKind::UnexpectedEof
                )
            }
            StoreError::Segment { .. }
            | StoreError::InvalidRecord(_)
            | StoreError::EmptySalvage { .. } => false,
        }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(err) => write!(f, "store i/o error: {err}"),
            StoreError::Segment { path, source } => {
                write!(f, "damaged segment {}: {source}", path.display())
            }
            StoreError::InvalidRecord(why) => write!(f, "invalid record: {why}"),
            StoreError::EmptySalvage {
                segment,
                dropped_bytes,
            } => write!(
                f,
                "segment {} salvaged zero records while dropping {dropped_bytes} torn bytes; \
                 refusing to treat the store as empty",
                segment.display()
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(err) => Some(err),
            StoreError::Segment { source, .. } => Some(source),
            StoreError::InvalidRecord(_) | StoreError::EmptySalvage { .. } => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(err: io::Error) -> Self {
        StoreError::Io(err)
    }
}

/// Interval index over record lifespans: entries sorted by start time, so a
/// window query scans only the prefix of records starting no later than the
/// window's end.
#[derive(Debug, Default)]
struct IntervalIndex {
    /// `(start, end, record)`, sorted by `(start, record)`.
    entries: Vec<(Timestamp, Timestamp, RecordId)>,
}

impl IntervalIndex {
    fn insert(&mut self, interval: TimeInterval, id: RecordId) {
        let key = (interval.start, id);
        // Crowds mostly finalize in roughly increasing start order, so the
        // common case is a plain push; the binary-search insert only pays
        // its O(n) shift for stragglers.
        if self.entries.last().is_none_or(|&(s, _, r)| (s, r) <= key) {
            self.entries.push((interval.start, interval.end, id));
            return;
        }
        let pos = self.entries.partition_point(|&(s, _, r)| (s, r) < key);
        self.entries.insert(pos, (interval.start, interval.end, id));
    }

    /// Appends without maintaining order; callers must [`Self::sort`] before
    /// the next query.  Replay uses this to stay `O(n log n)` overall.
    fn push_unsorted(&mut self, interval: TimeInterval, id: RecordId) {
        self.entries.push((interval.start, interval.end, id));
    }

    fn sort(&mut self) {
        self.entries.sort_unstable_by_key(|&(s, _, r)| (s, r));
    }

    /// Record ids whose interval intersects `window`, ascending.
    fn stab(&self, window: TimeInterval) -> Vec<RecordId> {
        let prefix = self.entries.partition_point(|&(s, _, _)| s <= window.end);
        let mut out: Vec<RecordId> = self.entries[..prefix]
            .iter()
            .filter(|&&(_, e, _)| e >= window.start)
            .map(|&(_, _, id)| id)
            .collect();
        out.sort_unstable();
        out
    }
}

/// The open write handle of the active (last) segment.
#[derive(Debug)]
struct ActiveSegment {
    index: u32,
    writer: BufWriter<Box<dyn VfsFile>>,
    /// Current size of the segment in bytes (header included).
    bytes: u64,
}

/// Report of a torn-tail repair performed while opening a store: bytes past
/// the last intact record of the final segment were dropped.
///
/// A repair is the expected aftermath of a crash mid-append; a *large*
/// `dropped_bytes` on a store that was cleanly [`sync`](PatternStore::sync)ed
/// may instead indicate media corruption worth investigating — the dropped
/// data is gone either way, so callers that care should surface this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailRepair {
    /// The repaired (last) segment file.
    pub segment: PathBuf,
    /// Number of bytes dropped from its tail.
    pub dropped_bytes: u64,
}

/// An append-only, durable store of finalized [`PatternRecord`]s with
/// region × time, per-object and top-k query paths.
///
/// See the [module documentation](self) for the file format and index
/// design.
#[derive(Debug)]
pub struct PatternStore {
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    options: StoreOptions,
    records: Vec<PatternRecord>,
    intervals: IntervalIndex,
    rtree: RTree,
    participation: HashMap<ObjectId, Vec<(RecordId, usize)>>,
    active: ActiveSegment,
    tail_repair: Option<TailRepair>,
}

impl PatternStore {
    /// Opens (or creates) the store in `dir` with default options, replaying
    /// all existing segments.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] on I/O failure or when any segment other
    /// than the last is damaged; a torn tail in the last segment is
    /// truncated away (crash recovery) and reported via
    /// [`PatternStore::tail_repair`].
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_with(dir, StoreOptions::default())
    }

    /// Like [`PatternStore::open`] with explicit [`StoreOptions`].
    ///
    /// # Errors
    ///
    /// See [`PatternStore::open`].
    pub fn open_with(dir: impl AsRef<Path>, options: StoreOptions) -> Result<Self, StoreError> {
        Self::open_at(Arc::new(RealVfs), dir, options)
    }

    /// Like [`PatternStore::open_with`] against an explicit storage backend
    /// — the seam the fault-injection tests use to run the exact production
    /// store code over a [`FaultVfs`](crate::vfs::FaultVfs).
    ///
    /// # Errors
    ///
    /// See [`PatternStore::open`], plus [`StoreError::EmptySalvage`] when a
    /// torn log decodes to zero records (see
    /// [`StoreOptions::allow_empty_salvage`]).
    pub fn open_at(
        vfs: Arc<dyn Vfs>,
        dir: impl AsRef<Path>,
        options: StoreOptions,
    ) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        vfs.create_dir_all(&dir)?;

        let segments = Self::list_segments(vfs.as_ref(), &dir)?;

        let mut replayed: Vec<PatternRecord> = Vec::new();
        let mut tail_repair = None;
        let active = match segments.last().copied() {
            None => Self::create_segment(vfs.as_ref(), &dir, 1)?,
            Some(last) => {
                let mut active = None;
                for &index in &segments {
                    let path = segment_path(&dir, index);
                    let is_last = index == last;
                    let valid_len =
                        Self::replay_segment(vfs.as_ref(), &path, is_last, &mut replayed)?;
                    if is_last {
                        // Reopen the tail segment for appending, dropping any
                        // torn bytes past the last intact record — and report
                        // the repair, so callers can tell a routine crash
                        // cleanup from unexpected data loss.
                        let on_disk = vfs.file_len(&path)?;
                        if on_disk > valid_len {
                            // A torn log that decodes to *nothing* is more
                            // likely the wrong directory or wholesale
                            // corruption than a routine crash; refuse to
                            // pass it off as an empty store unless the
                            // caller opted in (and refuse *before* the
                            // destructive truncation below).
                            if replayed.is_empty() && !options.allow_empty_salvage {
                                return Err(StoreError::EmptySalvage {
                                    segment: path.clone(),
                                    dropped_bytes: on_disk - valid_len,
                                });
                            }
                            tail_repair = Some(TailRepair {
                                segment: path.clone(),
                                dropped_bytes: on_disk - valid_len,
                            });
                            if gpdt_obs::enabled() {
                                gpdt_obs::counter!("store.tail_repairs").inc();
                                gpdt_obs::record_event(
                                    "tail.repair",
                                    None,
                                    format!(
                                        "dropped {} torn bytes from {}",
                                        on_disk - valid_len,
                                        path.display()
                                    ),
                                );
                            }
                            vfs.truncate(&path, valid_len)?;
                        }
                        let mut writer = BufWriter::new(vfs.open_append(&path)?);
                        let mut bytes = valid_len;
                        if valid_len < SEGMENT_HEADER_BYTES {
                            // Not even the header survived (crash during
                            // rotation): rewrite it so the segment is whole
                            // again.
                            write_header(&mut writer, &SEGMENT_MAGIC, SEGMENT_VERSION)?;
                            writer.flush()?;
                            bytes = SEGMENT_HEADER_BYTES;
                        }
                        active = Some(ActiveSegment {
                            index,
                            writer,
                            bytes,
                        });
                    }
                }
                active.expect("the last segment produced the active handle")
            }
        };

        let mut store = PatternStore {
            vfs,
            dir,
            options,
            records: Vec::new(),
            intervals: IntervalIndex::default(),
            rtree: RTree::new(),
            participation: HashMap::new(),
            active,
            tail_repair,
        };
        for record in replayed {
            store.index_record(record, true);
        }
        store.intervals.sort();
        Ok(store)
    }

    /// Lists the segment indices present in `dir` and verifies they form a
    /// gap-free run: a missing middle segment would silently shift every
    /// later record id, so it is a hard error, not a recoverable tail.
    ///
    /// Only exact writer-produced names (`seg-` + 8 digits + `.gpdt`) count;
    /// stray files that merely look similar are ignored rather than replayed
    /// twice under a duplicate index.
    fn list_segments(vfs: &dyn Vfs, dir: &Path) -> Result<Vec<u32>, StoreError> {
        let mut out = Vec::new();
        for name in vfs.list_dir(dir)? {
            if let Some(index) = name
                .strip_prefix("seg-")
                .and_then(|rest| rest.strip_suffix(".gpdt"))
                .filter(|digits| digits.len() == 8 && digits.bytes().all(|b| b.is_ascii_digit()))
                .and_then(|digits| digits.parse::<u32>().ok())
            {
                out.push(index);
            }
        }
        out.sort_unstable();
        // The writer always starts the run at 1, so a first index above 1 is
        // a lost leading segment, not a different numbering scheme.
        if out.first().is_some_and(|&first| first != 1) {
            return Err(StoreError::Segment {
                path: segment_path(dir, 1),
                source: DecodeError::Corrupt("segment file missing from the sequence"),
            });
        }
        if let Some(gap) = out.windows(2).find(|w| w[1] != w[0] + 1) {
            return Err(StoreError::Segment {
                path: segment_path(dir, gap[0] + 1),
                source: DecodeError::Corrupt("segment file missing from the sequence"),
            });
        }
        Ok(out)
    }

    /// Creates a fresh segment file with its header written and fsynced (a
    /// crash must not be able to leave a sealed predecessor pointing at a
    /// successor with a torn header).
    ///
    /// On a header-write failure the just-created file is removed again, so
    /// a transient fault mid-rotation does not leave an orphan that would
    /// turn the retry's `create_new` into a spurious `AlreadyExists`.
    fn create_segment(vfs: &dyn Vfs, dir: &Path, index: u32) -> Result<ActiveSegment, StoreError> {
        let path = segment_path(dir, index);
        let mut writer = BufWriter::new(vfs.create_new(&path)?);
        let written = write_header(&mut writer, &SEGMENT_MAGIC, SEGMENT_VERSION)
            .and_then(|()| writer.flush())
            .and_then(|()| writer.get_mut().sync());
        if let Err(err) = written {
            // Drop the buffered header instead of flushing it on drop, then
            // clean up (best-effort: a failure here only re-creates the
            // crash-during-rotation case replay already repairs).
            let _ = writer.into_parts();
            let _ = vfs.remove_file(&path);
            return Err(err.into());
        }
        Ok(ActiveSegment {
            index,
            writer,
            bytes: SEGMENT_HEADER_BYTES,
        })
    }

    /// Replays one segment, pushing its records onto `out`; returns the byte
    /// length of the intact prefix.
    ///
    /// For the last segment a torn tail ends the replay silently — including
    /// a tail so torn that not even the header survived (a crash during
    /// rotation), signalled by returning `0` so the caller rewrites the
    /// header.  For any other segment damage is an error.
    fn replay_segment(
        vfs: &dyn Vfs,
        path: &Path,
        tolerate_tail: bool,
        out: &mut Vec<PatternRecord>,
    ) -> Result<u64, StoreError> {
        let damaged = |source: DecodeError| StoreError::Segment {
            path: path.to_path_buf(),
            source,
        };
        let data = vfs.read_file(path)?;
        let mut file = io::Cursor::new(data.as_slice());
        if let Err(err) = read_header(&mut file, &SEGMENT_MAGIC, SEGMENT_VERSION) {
            if tolerate_tail && matches!(err, DecodeError::UnexpectedEof) {
                return Ok(0);
            }
            return Err(damaged(err));
        }
        let mut offset = SEGMENT_HEADER_BYTES;
        loop {
            match Self::read_framed(&mut file) {
                Ok(None) => return Ok(offset),
                Ok(Some((payload_len, record))) => {
                    out.push(record);
                    // frame = length prefix + payload + checksum
                    offset += 4 + u64::from(payload_len) + 8;
                }
                Err(err) => {
                    let torn = matches!(
                        err,
                        DecodeError::UnexpectedEof | DecodeError::ChecksumMismatch
                    );
                    if tolerate_tail && torn {
                        return Ok(offset);
                    }
                    return Err(damaged(err));
                }
            }
        }
    }

    /// Reads one framed record; `Ok(None)` at a clean end of the segment.
    fn read_framed<R: Read>(r: &mut R) -> Result<Option<(u32, PatternRecord)>, DecodeError> {
        let mut len_bytes = [0u8; 4];
        match r.read(&mut len_bytes)? {
            0 => return Ok(None),
            4 => {}
            mut n => {
                // Partial length prefix: keep reading to distinguish a torn
                // tail from a short read.
                while n < 4 {
                    let got = r.read(&mut len_bytes[n..])?;
                    if got == 0 {
                        return Err(DecodeError::UnexpectedEof);
                    }
                    n += got;
                }
            }
        }
        let len = u32::from_le_bytes(len_bytes);
        // Refuse absurd lengths before allocating: no writer produces frames
        // anywhere near this size, so such a prefix means the bytes at the
        // cursor are not a frame.  Reported as truncation so a garbage tail
        // after a crash is repaired rather than fatal.
        if len > (1 << 30) {
            return Err(DecodeError::UnexpectedEof);
        }
        let mut payload = vec![0u8; len as usize];
        r.read_exact(&mut payload)?;
        let mut sum_bytes = [0u8; 8];
        r.read_exact(&mut sum_bytes)?;
        if u64::from_le_bytes(sum_bytes) != fnv1a(&payload) {
            return Err(DecodeError::ChecksumMismatch);
        }
        let record: PatternRecord = decode_from_slice(&payload)?;
        Ok(Some((len, record)))
    }

    /// Adds a record to the in-memory state (replay and append share this;
    /// replay defers the interval-index sort to one pass at the end).
    fn index_record(&mut self, record: PatternRecord, bulk: bool) -> RecordId {
        let id = self.records.len();
        if bulk {
            self.intervals.push_unsorted(record.interval(), id);
        } else {
            self.intervals.insert(record.interval(), id);
        }
        self.rtree.insert(Entry {
            mbr: record.mbr,
            id,
        });
        for (g_idx, gathering) in record.gatherings.iter().enumerate() {
            // Participator lists are sorted; skip adjacent duplicates so a
            // sloppily built record cannot double-count a hit.
            let mut previous: Option<ObjectId> = None;
            for &object in &gathering.participators {
                if previous == Some(object) {
                    continue;
                }
                previous = Some(object);
                self.participation
                    .entry(object)
                    .or_default()
                    .push((id, g_idx));
            }
        }
        self.records.push(record);
        id
    }

    /// Appends a record to the log and indexes it.
    ///
    /// The record is written through a buffered writer; call
    /// [`PatternStore::sync`] to force it to stable storage.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::InvalidRecord`] if the record violates the
    /// containment invariant (see [`PatternRecord::validate`]) and
    /// propagates I/O errors otherwise — classify with
    /// [`StoreError::is_transient`] before retrying.  Every frame is written
    /// *and flushed* before the append is acknowledged, so `active.bytes`
    /// always equals the on-disk length of the segment at append boundaries;
    /// on an I/O error the partial frame is rolled back, the log stays
    /// intact, and the append can simply be retried.  The in-memory state is
    /// only updated on success.
    pub fn append(&mut self, record: PatternRecord) -> Result<RecordId, StoreError> {
        let _span = gpdt_obs::span!("store.append");
        record.validate().map_err(StoreError::InvalidRecord)?;
        let payload = encode_to_vec(&record);
        // Mirror the reader's frame-size cap (`read_framed`): a frame the
        // replay path would refuse must never be written in the first place.
        if payload.len() as u64 > (1 << 30) {
            return Err(StoreError::InvalidRecord(
                "record payload exceeds the 1 GiB frame cap",
            ));
        }
        let mut frame = Vec::with_capacity(payload.len() + 12);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        if self.active.bytes + frame.len() as u64 > self.options.max_segment_bytes
            && self.active.bytes > SEGMENT_HEADER_BYTES
        {
            self.rotate()?;
        }
        let writer = &mut self.active.writer;
        let written = writer.write_all(&frame).and_then(|()| writer.flush());
        if let Err(err) = written {
            // A torn frame in the stream would make replay drop every later
            // record as a "torn tail"; reopen the segment at its last good
            // offset so the failed append leaves no trace.
            self.rollback_active();
            return Err(err.into());
        }
        self.active.bytes += frame.len() as u64;
        Ok(self.index_record(record, false))
    }

    /// Discards a partially written frame after a failed append: reopens the
    /// active segment truncated to its last known-good length and replaces
    /// the writer, dropping the old writer's buffer without flushing it.
    ///
    /// Sound because every acknowledged append was flushed, so the on-disk
    /// length is never *behind* `active.bytes` — truncation can only remove
    /// partial-frame bytes, never create a hole over buffered good data.
    /// Best-effort — if the reopen itself fails the old writer stays (and
    /// will keep failing loudly).
    fn rollback_active(&mut self) {
        let path = segment_path(&self.dir, self.active.index);
        if self.vfs.truncate(&path, self.active.bytes).is_err() {
            return;
        }
        let Ok(file) = self.vfs.open_append(&path) else {
            return;
        };
        let torn = std::mem::replace(&mut self.active.writer, BufWriter::new(file));
        // `into_parts` hands the buffered bytes back instead of flushing
        // them on drop, which would re-append the torn frame.
        let _ = torn.into_parts();
    }

    /// Converts and appends one engine [`CrowdRecord`] (see
    /// [`PatternRecord::from_crowd_record`]).
    ///
    /// # Errors
    ///
    /// Propagates errors of [`PatternStore::append`].
    pub fn append_crowd_record(
        &mut self,
        record: &CrowdRecord,
        cdb: &ClusterDatabase,
    ) -> Result<RecordId, StoreError> {
        self.append(PatternRecord::from_crowd_record(record, cdb))
    }

    /// Archives the engine's frontier crowds that are already long enough to
    /// count as closed (the engine's own `closed_crowds` rule), returning
    /// how many records were appended.
    ///
    /// This is the *final-shutdown* step: afterwards the store also holds
    /// records the engine never finalized, making it a finished archive for
    /// queries — do not resume a
    /// [`MonitorService`](crate::service::MonitorService) with it (the
    /// service detects the mismatch and refuses to append).
    ///
    /// # Errors
    ///
    /// Propagates errors of [`PatternStore::append`]; records appended
    /// before the failure stay appended.
    pub fn archive_closed_frontier(
        &mut self,
        engine: &GatheringEngine,
    ) -> Result<usize, StoreError> {
        let kc = engine.config().crowd.kc;
        let mut appended = 0;
        for (crowd, gatherings) in engine.frontier() {
            if crowd.lifetime() >= kc {
                let record = CrowdRecord {
                    crowd: crowd.clone(),
                    gatherings: gatherings.clone(),
                };
                self.append_crowd_record(&record, engine.cluster_database())?;
                appended += 1;
            }
        }
        Ok(appended)
    }

    /// Seals the active segment durably and starts the next one.
    fn rotate(&mut self) -> Result<(), StoreError> {
        let _span = gpdt_obs::span!("store.rotate");
        if gpdt_obs::enabled() {
            gpdt_obs::counter!("store.rotations").inc();
        }
        // The sealed segment will never be written (or fsynced) again, so it
        // must hit stable storage now — otherwise a later `sync()` would
        // claim durability for records living only in the page cache of a
        // file nobody syncs.
        self.active.writer.flush()?;
        self.active.writer.get_mut().sync()?;
        let next = self.active.index + 1;
        self.active = Self::create_segment(self.vfs.as_ref(), &self.dir, next)?;
        Ok(())
    }

    /// Flushes buffered appends to the operating system.
    ///
    /// # Errors
    ///
    /// Propagates writer I/O errors.
    pub fn flush(&mut self) -> Result<(), StoreError> {
        self.active.writer.flush()?;
        Ok(())
    }

    /// Flushes and fsyncs the active segment, making all appended records
    /// crash-durable.
    ///
    /// # Errors
    ///
    /// Propagates writer I/O errors.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.active.writer.flush()?;
        self.active.writer.get_mut().sync()?;
        Ok(())
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The storage backend this store runs against — checkpoint files that
    /// must share the store's fate (and its injected faults) are written
    /// through the same backend.
    pub fn vfs(&self) -> Arc<dyn Vfs> {
        Arc::clone(&self.vfs)
    }

    /// The torn-tail repair performed while opening this store, if any.
    pub fn tail_repair(&self) -> Option<&TailRepair> {
        self.tail_repair.as_ref()
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records in append order.
    pub fn records(&self) -> &[PatternRecord] {
        &self.records
    }

    /// The record with the given id, if it exists.
    pub fn get(&self, id: RecordId) -> Option<&PatternRecord> {
        self.records.get(id)
    }

    /// Number of segment files written so far.
    pub fn segment_count(&self) -> u32 {
        self.active.index
    }

    /// Record ids of crowds whose lifespan intersects `window`, ascending.
    pub fn crowds_in_window(&self, window: TimeInterval) -> Vec<RecordId> {
        self.intervals.stab(window)
    }

    /// Record ids of crowds whose MBR intersects `region`, ascending.
    pub fn crowds_in_region(&self, region: &Mbr) -> Vec<RecordId> {
        self.rtree.window_query(region)
    }

    /// The region × time-window query: all stored gatherings whose MBR
    /// intersects `region` **and** whose lifespan intersects `window`,
    /// ordered by `(record, index)`.
    ///
    /// Candidate records are pruned with the R-tree first and the interval
    /// index second; only survivors are checked gathering by gathering.
    pub fn query_gatherings(&self, region: &Mbr, window: TimeInterval) -> Vec<GatheringHit> {
        let mut hits = Vec::new();
        for id in self.rtree.window_query(region) {
            let record = &self.records[id];
            let interval = record.interval();
            if interval.start > window.end || interval.end < window.start {
                continue;
            }
            for (index, gathering) in record.gatherings.iter().enumerate() {
                if gathering.interval.start <= window.end
                    && gathering.interval.end >= window.start
                    && gathering.mbr.intersects(region)
                {
                    hits.push(GatheringHit {
                        record: id,
                        index,
                        gathering: gathering.clone(),
                    });
                }
            }
        }
        hits
    }

    /// The participation history of one object: every stored gathering it
    /// participated in, ordered by `(record, index)` (which is
    /// finalization order).
    pub fn object_history(&self, object: ObjectId) -> Vec<GatheringHit> {
        let Some(entries) = self.participation.get(&object) else {
            return Vec::new();
        };
        entries
            .iter()
            .map(|&(record, index)| GatheringHit {
                record,
                index,
                gathering: self.records[record].gatherings[index].clone(),
            })
            .collect()
    }

    /// The `k` stored gatherings with the most participators, largest first;
    /// ties broken by `(record, index)` so the ranking is deterministic.
    pub fn top_k_gatherings(&self, k: usize) -> Vec<GatheringHit> {
        let mut all: Vec<(usize, RecordId, usize)> = self
            .records
            .iter()
            .enumerate()
            .flat_map(|(id, record)| {
                record
                    .gatherings
                    .iter()
                    .enumerate()
                    .map(move |(index, g)| (g.participators.len(), id, index))
            })
            .collect();
        all.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        all.truncate(k);
        all.into_iter()
            .map(|(_, record, index)| GatheringHit {
                record,
                index,
                gathering: self.records[record].gatherings[index].clone(),
            })
            .collect()
    }
}

impl Drop for PatternStore {
    fn drop(&mut self) {
        let _ = self.active.writer.flush();
    }
}

/// Path of segment `index` inside `dir`.
fn segment_path(dir: &Path, index: u32) -> PathBuf {
    dir.join(format!("seg-{index:08}.gpdt"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::FaultVfs;
    use gpdt_clustering::ClusterId;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::fs::OpenOptions;

    /// A unique fresh directory under the system temp dir.
    fn temp_store_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gpdt-store-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn record(start: Timestamp, len: u32, x: f64, participators: &[u32]) -> PatternRecord {
        let crowd = Crowd::new((start..start + len).map(|t| ClusterId::new(t, 0)).collect());
        let interval = crowd.interval();
        let mut participators: Vec<ObjectId> =
            participators.iter().map(|&i| ObjectId::new(i)).collect();
        participators.sort_unstable();
        participators.dedup();
        PatternRecord {
            crowd,
            mbr: Mbr::new(x, 0.0, x + 100.0, 100.0),
            gatherings: vec![StoredGathering {
                interval,
                mbr: Mbr::new(x, 0.0, x + 50.0, 50.0),
                participators,
            }],
        }
    }

    #[test]
    fn append_reopen_roundtrip() {
        let dir = temp_store_dir("roundtrip");
        let mut ids = Vec::new();
        {
            let mut store = PatternStore::open(&dir).unwrap();
            assert!(store.is_empty());
            for i in 0..10u32 {
                ids.push(
                    store
                        .append(record(i * 5, 4, f64::from(i) * 500.0, &[i, i + 1]))
                        .unwrap(),
                );
            }
            store.sync().unwrap();
            assert_eq!(store.len(), 10);
        }
        let store = PatternStore::open(&dir).unwrap();
        assert_eq!(store.len(), 10);
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
        for (i, rec) in store.records().iter().enumerate() {
            assert_eq!(
                rec,
                &record(i as u32 * 5, 4, i as f64 * 500.0, &[i as u32, i as u32 + 1])
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_rotate_and_replay_in_order() {
        let dir = temp_store_dir("rotate");
        let options = StoreOptions {
            max_segment_bytes: 256,
            ..StoreOptions::default()
        };
        {
            let mut store = PatternStore::open_with(&dir, options).unwrap();
            for i in 0..20u32 {
                store.append(record(i, 3, f64::from(i), &[i])).unwrap();
            }
            assert!(store.segment_count() > 1, "rotation must have happened");
            store.sync().unwrap();
        }
        let store = PatternStore::open_with(&dir, options).unwrap();
        assert_eq!(store.len(), 20);
        for (i, rec) in store.records().iter().enumerate() {
            assert_eq!(rec.interval().start, i as u32);
        }
        // Appending after reopen continues in the tail segment.
        let mut store = store;
        store.append(record(99, 2, 0.0, &[7])).unwrap();
        assert_eq!(store.len(), 21);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = temp_store_dir("torn");
        {
            let mut store = PatternStore::open(&dir).unwrap();
            for i in 0..5u32 {
                store.append(record(i, 2, 0.0, &[i])).unwrap();
            }
            store.sync().unwrap();
        }
        // Corrupt the log by chopping bytes off the tail (a crashed append).
        let path = segment_path(&dir, 1);
        let full = std::fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(full - 5).unwrap();
        drop(file);

        let store = PatternStore::open(&dir).unwrap();
        assert_eq!(store.len(), 4, "the torn record is dropped");
        // The repair is reported, not silent.
        let repair = store.tail_repair().expect("repair must be reported");
        assert_eq!(repair.segment, path);
        assert!(repair.dropped_bytes > 0);
        // The file was truncated back to its intact prefix, so appending
        // again yields a clean log.
        let mut store = store;
        store.append(record(50, 2, 0.0, &[1])).unwrap();
        store.sync().unwrap();
        let reopened = PatternStore::open(&dir).unwrap();
        assert_eq!(reopened.len(), 5);
        assert!(
            reopened.tail_repair().is_none(),
            "clean log needs no repair"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damage_in_a_sealed_segment_is_an_error() {
        let dir = temp_store_dir("sealed-damage");
        let options = StoreOptions {
            max_segment_bytes: 256,
            ..StoreOptions::default()
        };
        {
            let mut store = PatternStore::open_with(&dir, options).unwrap();
            for i in 0..20u32 {
                store.append(record(i, 3, f64::from(i), &[i])).unwrap();
            }
            assert!(store.segment_count() > 1);
            store.sync().unwrap();
        }
        // Flip a payload byte in the first (sealed) segment.
        let path = segment_path(&dir, 1);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        match PatternStore::open_with(&dir, options) {
            Err(StoreError::Segment { path: p, .. }) => assert_eq!(p, path),
            other => panic!("expected a segment error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_header_after_rotation_is_repaired() {
        let dir = temp_store_dir("torn-header");
        {
            let mut store = PatternStore::open(&dir).unwrap();
            for i in 0..3u32 {
                store.append(record(i, 2, 0.0, &[i])).unwrap();
            }
            store.sync().unwrap();
        }
        // A crash during rotation can leave the new last segment with only a
        // few header bytes on disk.
        std::fs::write(segment_path(&dir, 2), [0x47, 0x50, 0x44]).unwrap();
        let mut store = PatternStore::open(&dir).unwrap();
        assert_eq!(store.len(), 3, "segment 1's records survive");
        let repair = store.tail_repair().expect("repair must be reported");
        assert_eq!(repair.segment, segment_path(&dir, 2));
        assert_eq!(repair.dropped_bytes, 3);
        // The rewritten header makes the segment appendable and replayable.
        store.append(record(50, 2, 0.0, &[9])).unwrap();
        store.sync().unwrap();
        drop(store);
        let reopened = PatternStore::open(&dir).unwrap();
        assert_eq!(reopened.len(), 4);
        assert!(reopened.tail_repair().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_middle_segment_is_a_hard_error() {
        let dir = temp_store_dir("gap");
        let options = StoreOptions {
            max_segment_bytes: 256,
            ..StoreOptions::default()
        };
        {
            let mut store = PatternStore::open_with(&dir, options).unwrap();
            for i in 0..20u32 {
                store.append(record(i, 3, f64::from(i), &[i])).unwrap();
            }
            assert!(store.segment_count() >= 3);
            store.sync().unwrap();
        }
        std::fs::remove_file(segment_path(&dir, 2)).unwrap();
        match PatternStore::open_with(&dir, options) {
            Err(StoreError::Segment { path, source }) => {
                assert_eq!(path, segment_path(&dir, 2));
                assert!(matches!(source, DecodeError::Corrupt(_)));
            }
            other => panic!("expected a gap error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_segment_version_is_rejected() {
        let dir = temp_store_dir("version");
        {
            let mut store = PatternStore::open(&dir).unwrap();
            store.append(record(0, 2, 0.0, &[1])).unwrap();
            store.sync().unwrap();
        }
        let path = segment_path(&dir, 1);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] = 0xFF;
        bytes[9] = 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        match PatternStore::open(&dir) {
            Err(StoreError::Segment { source, .. }) => {
                assert!(matches!(source, DecodeError::UnsupportedVersion { .. }));
            }
            other => panic!("expected a version error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn queries_match_full_scans_on_random_stores() {
        let dir = temp_store_dir("queries");
        let mut rng = StdRng::seed_from_u64(0x57013);
        let mut store = PatternStore::open(&dir).unwrap();
        for _ in 0..60 {
            let start = rng.gen_range(0u32..200);
            let len = rng.gen_range(1u32..20);
            let x = rng.gen_range(-5_000.0..5_000.0);
            let participators: Vec<u32> = (0..rng.gen_range(1u32..20))
                .map(|_| rng.gen_range(0u32..40))
                .collect();
            store.append(record(start, len, x, &participators)).unwrap();
        }

        for _ in 0..50 {
            let t1 = rng.gen_range(0u32..220);
            let t2 = rng.gen_range(0u32..220);
            let window = TimeInterval::new(t1.min(t2), t1.max(t2));
            let x = rng.gen_range(-6_000.0..5_000.0);
            let y = rng.gen_range(-100.0..100.0);
            let region = Mbr::new(x, y, x + rng.gen_range(10.0..2_000.0), y + 100.0);

            let got = store.query_gatherings(&region, window);
            let mut expected = Vec::new();
            for (id, rec) in store.records().iter().enumerate() {
                for (index, g) in rec.gatherings.iter().enumerate() {
                    if g.mbr.intersects(&region)
                        && g.interval.start <= window.end
                        && g.interval.end >= window.start
                    {
                        expected.push((id, index));
                    }
                }
            }
            let got_keys: Vec<(usize, usize)> = got.iter().map(|h| (h.record, h.index)).collect();
            assert_eq!(got_keys, expected);

            // Window-only index agrees with a scan too.
            let ids = store.crowds_in_window(window);
            let expected_ids: Vec<RecordId> = store
                .records()
                .iter()
                .enumerate()
                .filter(|(_, r)| {
                    r.interval().start <= window.end && r.interval().end >= window.start
                })
                .map(|(id, _)| id)
                .collect();
            assert_eq!(ids, expected_ids);
        }

        // Object history agrees with a scan.
        for raw in 0..40u32 {
            let object = ObjectId::new(raw);
            let got: Vec<(usize, usize)> = store
                .object_history(object)
                .iter()
                .map(|h| (h.record, h.index))
                .collect();
            let expected: Vec<(usize, usize)> = store
                .records()
                .iter()
                .enumerate()
                .flat_map(|(id, r)| {
                    r.gatherings
                        .iter()
                        .enumerate()
                        .filter(|(_, g)| g.participators.contains(&object))
                        .map(move |(index, _)| (id, index))
                })
                .collect();
            assert_eq!(got, expected, "object {object}");
        }

        // Top-k is the sorted prefix of the full ranking.
        let all = store.top_k_gatherings(usize::MAX);
        for w in all.windows(2) {
            assert!(w[0].gathering.participators.len() >= w[1].gathering.participators.len());
        }
        let top3 = store.top_k_gatherings(3);
        assert_eq!(top3.len(), 3);
        assert_eq!(&all[..3], top3.as_slice());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_rejects_records_violating_the_containment_invariant() {
        let dir = temp_store_dir("invariant");
        let mut store = PatternStore::open(&dir).unwrap();

        // Gathering MBR sticking out of the record MBR.
        let mut bad = record(0, 4, 0.0, &[1, 2]);
        bad.gatherings[0].mbr = Mbr::new(-50.0, 0.0, 10.0, 10.0);
        let err = store.append(bad).unwrap_err();
        assert!(matches!(err, StoreError::InvalidRecord(_)), "{err}");
        assert!(!err.is_transient(), "invalid records must not be retried");

        // Gathering lifespan outside the crowd lifespan.
        let mut bad = record(10, 4, 0.0, &[1, 2]);
        bad.gatherings[0].interval = TimeInterval::new(9, 13);
        let err = store.append(bad).unwrap_err();
        assert!(matches!(err, StoreError::InvalidRecord(_)), "{err}");

        // Unsorted participators.
        let mut bad = record(0, 4, 0.0, &[1, 2]);
        bad.gatherings[0].participators = vec![ObjectId::new(5), ObjectId::new(1)];
        let err = store.append(bad).unwrap_err();
        assert!(matches!(err, StoreError::InvalidRecord(_)), "{err}");

        // Nothing was written or indexed, and good appends still work.
        assert!(store.is_empty());
        store.append(record(0, 4, 0.0, &[1, 2])).unwrap();
        assert_eq!(store.len(), 1);
        drop(store);
        assert_eq!(PatternStore::open(&dir).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_record_salvage_is_reported_not_silent() {
        let dir = temp_store_dir("empty-salvage");
        {
            let mut store = PatternStore::open(&dir).unwrap();
            store.append(record(0, 4, 0.0, &[1, 2])).unwrap();
            store.sync().unwrap();
        }
        // Corrupt the single record's frame: replay now salvages nothing
        // from a segment that clearly held data.
        let path = segment_path(&dir, 1);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[SEGMENT_HEADER_BYTES as usize + 6] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        match PatternStore::open(&dir) {
            Err(StoreError::EmptySalvage {
                segment,
                dropped_bytes,
            }) => {
                assert_eq!(segment, path);
                assert!(dropped_bytes > 0);
            }
            other => panic!("expected EmptySalvage, got {other:?}"),
        }
        // The refusal is non-destructive: the damaged bytes are still there.
        assert_eq!(std::fs::read(&path).unwrap(), bytes);

        // The escape hatch: callers that know empty is correct may proceed,
        // and the repair is then reported the usual way.
        let salvage = PatternStore::open_with(
            &dir,
            StoreOptions {
                allow_empty_salvage: true,
                ..StoreOptions::default()
            },
        )
        .unwrap();
        assert!(salvage.is_empty());
        assert!(salvage.tail_repair().is_some());
        drop(salvage);

        // A genuinely empty store (header-only segment) keeps opening
        // silently — EmptySalvage is about dropped bytes, not emptiness.
        let empty_dir = temp_store_dir("empty-clean");
        drop(PatternStore::open(&empty_dir).unwrap());
        let clean = PatternStore::open(&empty_dir).unwrap();
        assert!(clean.is_empty());
        assert!(clean.tail_repair().is_none());
        drop(clean);
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&empty_dir).unwrap();
    }

    #[test]
    fn fault_vfs_backed_store_round_trips_and_repairs() {
        // The exact production store code over the in-memory fault backend:
        // append, rotate, crash with an un-synced tail, reopen, verify the
        // synced prefix survived intact.
        let vfs = Arc::new(FaultVfs::new(0xF00D));
        let dir = PathBuf::from("/store");
        let options = StoreOptions {
            max_segment_bytes: 256,
            ..StoreOptions::default()
        };
        let mut store = PatternStore::open_at(vfs.clone(), &dir, options).unwrap();
        for i in 0..12u32 {
            store.append(record(i, 3, f64::from(i), &[i])).unwrap();
        }
        assert!(store.segment_count() > 1, "rotation must happen");
        store.sync().unwrap();
        let synced = store.len();
        // More appends that are flushed but never synced, then a crash.
        for i in 12..16u32 {
            store.append(record(i, 3, f64::from(i), &[i])).unwrap();
        }
        drop(store);
        vfs.kill_after(1);
        let _ = vfs.create_dir_all(Path::new("/x"));
        vfs.crash_recover();

        let store = PatternStore::open_at(vfs.clone(), &dir, options).unwrap();
        assert!(store.len() >= synced, "synced records must survive");
        assert!(store.len() <= 16);
        for (i, rec) in store.records().iter().enumerate() {
            assert_eq!(rec.interval().start, i as u32, "prefix must be intact");
        }
    }

    #[test]
    fn empty_window_and_region_yield_empty_results() {
        let dir = temp_store_dir("empty");
        let mut store = PatternStore::open(&dir).unwrap();
        store.append(record(10, 5, 0.0, &[1, 2, 3])).unwrap();
        // Disjoint in time.
        assert!(store
            .query_gatherings(
                &Mbr::new(-10.0, -10.0, 200.0, 200.0),
                TimeInterval::new(100, 120)
            )
            .is_empty());
        // Disjoint in space.
        assert!(store
            .query_gatherings(
                &Mbr::new(9_000.0, 9_000.0, 9_100.0, 9_100.0),
                TimeInterval::new(0, 50)
            )
            .is_empty());
        assert!(store.object_history(ObjectId::new(99)).is_empty());
        assert!(store.top_k_gatherings(0).is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
